package ir

import (
	"bytes"
	"strings"
	"testing"
)

// Golden request bodies written in each codec's canonical field order,
// so decode → re-encode must reproduce them byte-identically.
const (
	goldenOpenAIChat = `{"model":"llama-3-8b","messages":[{"role":"system","content":"be brief"},{"role":"user","content":"hello"}],"stream":true,"max_tokens":32,"temperature":0.7,"seed":42}`

	goldenOllamaChat = `{"model":"llama-3-8b","messages":[{"role":"user","content":"what is in this picture","images":["aGVsbG8="]}],"stream":true,"options":{"num_predict":32,"temperature":0.7,"seed":42}}`

	goldenOllamaGenerate = `{"model":"llama-3-8b","prompt":"translate to French: cheese","system":"you are a translator","stream":false,"options":{"num_predict":16}}`
)

func TestOpenAIChatRequestRoundTrip(t *testing.T) {
	c := OpenAICodec{}
	req, err := c.DecodeRequest(FamilyChat, []byte(goldenOpenAIChat))
	if err != nil {
		t.Fatalf("DecodeRequest: %v", err)
	}
	if req.Model != "llama-3-8b" || !req.Stream || req.Chat == nil {
		t.Fatalf("decoded request = %+v", req)
	}
	out, err := c.EncodeRequest(req)
	if err != nil {
		t.Fatalf("EncodeRequest: %v", err)
	}
	if string(out) != goldenOpenAIChat {
		t.Fatalf("re-encode mismatch:\n got  %s\n want %s", out, goldenOpenAIChat)
	}
}

func TestOllamaChatRequestRoundTrip(t *testing.T) {
	c := OllamaCodec{}
	req, err := c.DecodeRequest(FamilyChat, []byte(goldenOllamaChat))
	if err != nil {
		t.Fatalf("DecodeRequest: %v", err)
	}
	msg := req.Chat.Messages[0]
	if msg.Images() != 1 {
		t.Fatalf("Images() = %d, want 1 (canonical image_url part)", msg.Images())
	}
	if msg.Content != "what is in this picture" {
		t.Fatalf("Content = %q (text must mirror into Content for prompt hashing)", msg.Content)
	}
	if got := msg.Parts[1].ImageURL.URL; !strings.HasPrefix(got, dataURIPrefix) {
		t.Fatalf("image part URL = %q, want data URI", got)
	}
	out, err := c.EncodeRequest(req)
	if err != nil {
		t.Fatalf("EncodeRequest: %v", err)
	}
	if string(out) != goldenOllamaChat {
		t.Fatalf("re-encode mismatch:\n got  %s\n want %s", out, goldenOllamaChat)
	}
}

func TestOllamaGenerateRequestRoundTrip(t *testing.T) {
	c := OllamaCodec{}
	req, err := c.DecodeRequest(FamilyGenerate, []byte(goldenOllamaGenerate))
	if err != nil {
		t.Fatalf("DecodeRequest: %v", err)
	}
	if len(req.Chat.Messages) != 2 || req.Chat.Messages[0].Role != "system" {
		t.Fatalf("generate must canonicalize to system+user chat, got %+v", req.Chat.Messages)
	}
	if req.Stream {
		t.Fatal("stream=false must be honored")
	}
	out, err := c.EncodeRequest(req)
	if err != nil {
		t.Fatalf("EncodeRequest: %v", err)
	}
	if string(out) != goldenOllamaGenerate {
		t.Fatalf("re-encode mismatch:\n got  %s\n want %s", out, goldenOllamaGenerate)
	}
}

func TestOllamaStreamDefaultsOn(t *testing.T) {
	req, err := OllamaCodec{}.DecodeRequest(FamilyChat,
		[]byte(`{"model":"m","messages":[{"role":"user","content":"hi"}]}`))
	if err != nil {
		t.Fatalf("DecodeRequest: %v", err)
	}
	if !req.Stream {
		t.Fatal("Ollama requests must default to streaming")
	}
	// The re-encode pins the resolved default explicitly so the
	// canonical form is unambiguous.
	out, err := OllamaCodec{}.EncodeRequest(req)
	if err != nil {
		t.Fatalf("EncodeRequest: %v", err)
	}
	if !strings.Contains(string(out), `"stream":true`) {
		t.Fatalf("re-encode must pin stream explicitly, got %s", out)
	}
}

func TestCrossProtocolCanonicalEquivalence(t *testing.T) {
	// The same question through either protocol must produce the same
	// canonical upstream body — the property the response cache keys on.
	openai := `{"model":"m","messages":[{"role":"user","content":"hi"}],"stream":true}`
	ollama := `{"model":"m","messages":[{"role":"user","content":"hi"}],"stream":true}`
	reqA, err := OpenAICodec{}.DecodeRequest(FamilyChat, []byte(openai))
	if err != nil {
		t.Fatal(err)
	}
	reqB, err := OllamaCodec{}.DecodeRequest(FamilyChat, []byte(ollama))
	if err != nil {
		t.Fatal(err)
	}
	a, err := OpenAICodec{}.EncodeRequest(reqA)
	if err != nil {
		t.Fatal(err)
	}
	b, err := OpenAICodec{}.EncodeRequest(reqB)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("canonical encodings differ:\n openai %s\n ollama %s", a, b)
	}
}

// Golden stream frames in each codec's canonical encoding.
var (
	goldenSSEEvents = []string{
		`data: {"id":"chatcmpl-1","object":"chat.completion.chunk","created":100,"model":"m","choices":[{"index":0,"delta":{"role":"assistant","content":""},"finish_reason":null}]}`,
		`data: {"id":"chatcmpl-1","object":"chat.completion.chunk","created":100,"model":"m","choices":[{"index":0,"delta":{"role":"","content":"hello "},"finish_reason":null}]}`,
		`data: {"id":"chatcmpl-1","object":"chat.completion.chunk","created":100,"model":"m","choices":[{"index":0,"delta":{"role":"","content":"world"},"finish_reason":"stop"}],"usage":{"prompt_tokens":9,"completion_tokens":2,"total_tokens":11}}`,
		`data: [DONE]`,
	}
	goldenNDJSONChatLines = []string{
		`{"model":"m","created_at":"1970-01-01T00:01:40Z","message":{"role":"assistant","content":"hello "},"done":false}`,
		`{"model":"m","created_at":"1970-01-01T00:01:40Z","message":{"role":"assistant","content":"world"},"done":true,"done_reason":"stop","prompt_eval_count":9,"eval_count":2}`,
	}
)

func TestSSEStreamEventRoundTrip(t *testing.T) {
	c := OpenAICodec{}
	for i, event := range goldenSSEEvents {
		ev, err := c.DecodeStreamEvent(FamilyChat, []byte(event))
		if err != nil {
			t.Fatalf("event %d: DecodeStreamEvent: %v", i, err)
		}
		out, err := c.EncodeStreamEvent(FamilyChat, ev)
		if err != nil {
			t.Fatalf("event %d: EncodeStreamEvent: %v", i, err)
		}
		if want := event + "\n\n"; string(out) != want {
			t.Fatalf("event %d re-encode mismatch:\n got  %q\n want %q", i, out, want)
		}
	}
}

func TestNDJSONStreamLineRoundTrip(t *testing.T) {
	c := OllamaCodec{}
	for i, line := range goldenNDJSONChatLines {
		ev, err := c.DecodeStreamEvent(FamilyChat, []byte(line))
		if err != nil {
			t.Fatalf("line %d: DecodeStreamEvent: %v", i, err)
		}
		out, err := c.EncodeStreamEvent(FamilyChat, ev)
		if err != nil {
			t.Fatalf("line %d: EncodeStreamEvent: %v", i, err)
		}
		if want := line + "\n"; string(out) != want {
			t.Fatalf("line %d re-encode mismatch:\n got  %q\n want %q", i, out, want)
		}
	}
}

func TestSSEToNDJSONTranslation(t *testing.T) {
	// A canonical upstream SSE stream translated through the IR must
	// render the Ollama NDJSON golden: the empty role preamble becomes an
	// empty content line, the finish chunk folds into done:true, and the
	// [DONE] sentinel disappears (the done line already closed the
	// stream). 1:1 event mapping is what keeps the resume counter valid
	// across framings.
	var got bytes.Buffer
	for _, event := range goldenSSEEvents {
		ev, err := OpenAICodec{}.DecodeStreamEvent(FamilyChat, []byte(event))
		if err != nil {
			t.Fatalf("decode %q: %v", event, err)
		}
		frame, err := OllamaCodec{}.EncodeStreamEvent(FamilyChat, ev)
		if err != nil {
			t.Fatalf("encode: %v", err)
		}
		got.Write(frame)
	}
	want := `{"model":"m","created_at":"1970-01-01T00:01:40Z","message":{"role":"assistant","content":""},"done":false}` + "\n" +
		goldenNDJSONChatLines[0] + "\n" +
		goldenNDJSONChatLines[1] + "\n"
	if got.String() != want {
		t.Fatalf("translated stream mismatch:\n got  %q\n want %q", got.String(), want)
	}
}

func TestNDJSONToSSETranslation(t *testing.T) {
	// The reverse direction: an NDJSON done line expands to the finish
	// chunk frame followed by the [DONE] sentinel.
	ev, err := OllamaCodec{}.DecodeStreamEvent(FamilyChat, []byte(goldenNDJSONChatLines[1]))
	if err != nil {
		t.Fatal(err)
	}
	if !ev.Done || ev.Chunk == nil || ev.Chunk.Choices[0].FinishReason == nil {
		t.Fatalf("done line must decode to a Done event with folded finish chunk, got %+v", ev)
	}
	out, err := OpenAICodec{}.EncodeStreamEvent(FamilyChat, ev)
	if err != nil {
		t.Fatal(err)
	}
	s := string(out)
	if !strings.Contains(s, `"finish_reason":"stop"`) || !strings.HasSuffix(s, "data: [DONE]\n\n") {
		t.Fatalf("done event must render finish frame + [DONE], got %q", s)
	}
	if strings.Count(s, "data: ") != 2 {
		t.Fatalf("want exactly two frames, got %q", s)
	}
}

func TestGenerateStreamUsesResponseField(t *testing.T) {
	ev := &StreamEvent{Chunk: &ChatCompletionChunk{
		Object: "chat.completion.chunk", Model: "m",
		Choices: []DeltaChoice{{Delta: Message{Content: "bonjour"}}},
	}}
	out, err := OllamaCodec{}.EncodeStreamEvent(FamilyGenerate, ev)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(out), `"response":"bonjour"`) {
		t.Fatalf("generate stream must use the response field, got %s", out)
	}
}

func TestEmbeddingsAndRerankDecode(t *testing.T) {
	c := OpenAICodec{}
	req, err := c.DecodeRequest(FamilyEmbeddings, []byte(`{"model":"m","input":["a","b"]}`))
	if err != nil {
		t.Fatalf("embeddings decode: %v", err)
	}
	if len(req.Embeddings.Input) != 2 {
		t.Fatalf("input = %v", req.Embeddings.Input)
	}
	single, err := c.DecodeRequest(FamilyEmbeddings, []byte(`{"model":"m","input":"just one"}`))
	if err != nil {
		t.Fatalf("single-string input: %v", err)
	}
	if len(single.Embeddings.Input) != 1 || single.Embeddings.Input[0] != "just one" {
		t.Fatalf("input = %v", single.Embeddings.Input)
	}
	if _, err := c.DecodeRequest(FamilyRerank, []byte(`{"model":"m","query":"q","documents":["d1","d2"],"top_n":1}`)); err != nil {
		t.Fatalf("rerank decode: %v", err)
	}
	if _, err := c.DecodeRequest(FamilyRerank, []byte(`{"model":"m","documents":["d"]}`)); err == nil {
		t.Fatal("rerank without query must fail validation")
	}
}

func TestMultimodalMessageRoundTrip(t *testing.T) {
	body := `{"model":"m","messages":[{"role":"user","content":[{"type":"text","text":"describe"},{"type":"image_url","image_url":{"url":"data:image/png;base64,xyz"}},{"type":"input_audio","input_audio":{"seconds":3.5}}]}]}`
	req, err := OpenAICodec{}.DecodeRequest(FamilyChat, []byte(body))
	if err != nil {
		t.Fatalf("DecodeRequest: %v", err)
	}
	m := req.Chat.Messages[0]
	if m.Content != "describe" || m.Images() != 1 || m.AudioSeconds() != 3.5 {
		t.Fatalf("decoded message = %+v", m)
	}
	out, err := OpenAICodec{}.EncodeRequest(req)
	if err != nil {
		t.Fatalf("EncodeRequest: %v", err)
	}
	if string(out) != body {
		t.Fatalf("re-encode mismatch:\n got  %s\n want %s", out, body)
	}
}

func TestOllamaResponseTranslation(t *testing.T) {
	canonical := `{"id":"chatcmpl-1","object":"chat.completion","created":100,"model":"m","choices":[{"index":0,"message":{"role":"assistant","content":"hi there"},"finish_reason":"stop"}],"usage":{"prompt_tokens":9,"completion_tokens":2,"total_tokens":11}}`
	resp, err := OpenAICodec{}.DecodeResponse(FamilyChat, []byte(canonical))
	if err != nil {
		t.Fatal(err)
	}
	out, err := OllamaCodec{}.EncodeResponse(resp)
	if err != nil {
		t.Fatal(err)
	}
	want := `{"model":"m","created_at":"1970-01-01T00:01:40Z","message":{"role":"assistant","content":"hi there"},"done":true,"done_reason":"stop","prompt_eval_count":9,"eval_count":2}`
	if string(out) != want {
		t.Fatalf("ollama response mismatch:\n got  %s\n want %s", out, want)
	}
	resp.Family = FamilyGenerate
	out, err = OllamaCodec{}.EncodeResponse(resp)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(out), `"response":"hi there"`) {
		t.Fatalf("generate response must use the response field, got %s", out)
	}
}
