package ir

import (
	"encoding/json"
	"fmt"
)

// ContentPart is one element of a multimodal message content array
// (OpenAI vision/audio chat). Type selects which payload field is set.
type ContentPart struct {
	Type       string      `json:"type"` // "text", "image_url", "input_audio"
	Text       string      `json:"text,omitempty"`
	ImageURL   *ImageURL   `json:"image_url,omitempty"`
	InputAudio *InputAudio `json:"input_audio,omitempty"`
}

// ImageURL carries one image reference (a URL or a data: URI).
type ImageURL struct {
	URL string `json:"url"`
}

// InputAudio carries one audio clip. Seconds is the simulation's
// deterministic stand-in for decoding the clip length out of Data: the
// perf model charges the audio encoder per second of input.
type InputAudio struct {
	Data    string  `json:"data,omitempty"`
	Format  string  `json:"format,omitempty"`
	Seconds float64 `json:"seconds,omitempty"`
}

// Message is one chat turn. Content holds the flattened text; Parts is
// non-nil when the turn arrived as a multimodal content array (vision
// or audio chat), in which case Content mirrors the concatenated text
// parts so prompt hashing and token counting stay protocol-agnostic.
type Message struct {
	Role    string
	Content string
	Parts   []ContentPart
}

// MarshalJSON renders content as a plain string, or as the multimodal
// part array when Parts is set (byte-preserving for decoded requests).
func (m Message) MarshalJSON() ([]byte, error) {
	if len(m.Parts) == 0 {
		return json.Marshal(struct {
			Role    string `json:"role"`
			Content string `json:"content"`
		}{m.Role, m.Content})
	}
	return json.Marshal(struct {
		Role    string        `json:"role"`
		Content []ContentPart `json:"content"`
	}{m.Role, m.Parts})
}

// UnmarshalJSON accepts content as either a string or a multimodal part
// array.
func (m *Message) UnmarshalJSON(b []byte) error {
	var wire struct {
		Role    string          `json:"role"`
		Content json.RawMessage `json:"content"`
	}
	if err := json.Unmarshal(b, &wire); err != nil {
		return err
	}
	m.Role = wire.Role
	m.Content = ""
	m.Parts = nil
	if len(wire.Content) == 0 || string(wire.Content) == "null" {
		return nil
	}
	if wire.Content[0] == '"' {
		return json.Unmarshal(wire.Content, &m.Content)
	}
	if err := json.Unmarshal(wire.Content, &m.Parts); err != nil {
		return fmt.Errorf("ir: message content must be a string or part array: %w", err)
	}
	for _, p := range m.Parts {
		if p.Type == "text" {
			m.Content += p.Text
		}
	}
	return nil
}

// Images returns the number of image parts in the message.
func (m Message) Images() int {
	var n int
	for _, p := range m.Parts {
		if p.Type == "image_url" {
			n++
		}
	}
	return n
}

// AudioSeconds returns the total audio length attached to the message.
func (m Message) AudioSeconds() float64 {
	var s float64
	for _, p := range m.Parts {
		if p.Type == "input_audio" && p.InputAudio != nil {
			s += p.InputAudio.Seconds
		}
	}
	return s
}

// ChatCompletionRequest is the POST /v1/chat/completions payload.
type ChatCompletionRequest struct {
	Model     string    `json:"model"`
	Messages  []Message `json:"messages"`
	Stream    bool      `json:"stream,omitempty"`
	MaxTokens int       `json:"max_tokens,omitempty"`
	// MinTokens is the vLLM extension forcing at least this many output
	// tokens before EOS is considered.
	MinTokens   int      `json:"min_tokens,omitempty"`
	Temperature *float64 `json:"temperature,omitempty"`
	Seed        *int64   `json:"seed,omitempty"`
	User        string   `json:"user,omitempty"`
}

// Validate checks the request's structural requirements.
func (r *ChatCompletionRequest) Validate() error {
	if r.Model == "" {
		return fmt.Errorf("ir: missing required field: model")
	}
	if len(r.Messages) == 0 {
		return fmt.Errorf("ir: messages must be non-empty")
	}
	for i, m := range r.Messages {
		switch m.Role {
		case "system", "user", "assistant", "tool":
		default:
			return fmt.Errorf("ir: messages[%d] has invalid role %q", i, m.Role)
		}
		for j, p := range m.Parts {
			switch p.Type {
			case "text":
			case "image_url":
				if p.ImageURL == nil || p.ImageURL.URL == "" {
					return fmt.Errorf("ir: messages[%d] content[%d] image_url missing url", i, j)
				}
			case "input_audio":
				if p.InputAudio == nil {
					return fmt.Errorf("ir: messages[%d] content[%d] input_audio missing payload", i, j)
				}
				if p.InputAudio.Seconds < 0 {
					return fmt.Errorf("ir: messages[%d] content[%d] input_audio seconds must be non-negative", i, j)
				}
			default:
				return fmt.Errorf("ir: messages[%d] content[%d] has invalid part type %q", i, j, p.Type)
			}
		}
	}
	if r.MaxTokens < 0 {
		return fmt.Errorf("ir: max_tokens must be non-negative")
	}
	if r.MinTokens < 0 {
		return fmt.Errorf("ir: min_tokens must be non-negative")
	}
	if r.Temperature != nil && (*r.Temperature < 0 || *r.Temperature > 2) {
		return fmt.Errorf("ir: temperature must be in [0, 2]")
	}
	return nil
}

// Usage reports token accounting for a completion.
type Usage struct {
	PromptTokens     int `json:"prompt_tokens"`
	CompletionTokens int `json:"completion_tokens"`
	TotalTokens      int `json:"total_tokens"`
}

// Choice is one completion alternative in a blocking response.
type Choice struct {
	Index        int     `json:"index"`
	Message      Message `json:"message"`
	FinishReason string  `json:"finish_reason"`
}

// ChatCompletionResponse is the blocking response body.
type ChatCompletionResponse struct {
	ID      string   `json:"id"`
	Object  string   `json:"object"`
	Created int64    `json:"created"`
	Model   string   `json:"model"`
	Choices []Choice `json:"choices"`
	Usage   Usage    `json:"usage"`
}

// DeltaChoice is one streamed increment.
type DeltaChoice struct {
	Index        int     `json:"index"`
	Delta        Message `json:"delta"`
	FinishReason *string `json:"finish_reason"`
}

// ChatCompletionChunk is one SSE event in a streaming response.
type ChatCompletionChunk struct {
	ID      string        `json:"id"`
	Object  string        `json:"object"`
	Created int64         `json:"created"`
	Model   string        `json:"model"`
	Choices []DeltaChoice `json:"choices"`
	Usage   *Usage        `json:"usage,omitempty"`
}

// PromptField accepts the completions API's prompt as either a single
// string or an array of strings (the specification allows both).
type PromptField []string

// UnmarshalJSON implements json.Unmarshaler.
func (p *PromptField) UnmarshalJSON(b []byte) error {
	if string(b) == "null" {
		*p = nil
		return nil
	}
	var s string
	if err := json.Unmarshal(b, &s); err == nil {
		*p = PromptField{s}
		return nil
	}
	var ss []string
	if err := json.Unmarshal(b, &ss); err == nil {
		*p = PromptField(ss)
		return nil
	}
	return fmt.Errorf("ir: prompt must be a string or array of strings")
}

// MarshalJSON implements json.Marshaler: a single prompt round-trips as a
// plain string.
func (p PromptField) MarshalJSON() ([]byte, error) {
	if len(p) == 1 {
		return json.Marshal(p[0])
	}
	return json.Marshal([]string(p))
}

// CompletionRequest is the legacy POST /v1/completions payload.
type CompletionRequest struct {
	Model       string      `json:"model"`
	Prompt      PromptField `json:"prompt"`
	MaxTokens   int         `json:"max_tokens,omitempty"`
	Temperature *float64    `json:"temperature,omitempty"`
	Seed        *int64      `json:"seed,omitempty"`
	Stream      bool        `json:"stream,omitempty"`
	User        string      `json:"user,omitempty"`
}

// Validate checks the request's structural requirements.
func (r *CompletionRequest) Validate() error {
	if r.Model == "" {
		return fmt.Errorf("ir: missing required field: model")
	}
	if len(r.Prompt) == 0 {
		return fmt.Errorf("ir: prompt must be non-empty")
	}
	if r.MaxTokens < 0 {
		return fmt.Errorf("ir: max_tokens must be non-negative")
	}
	if r.Temperature != nil && (*r.Temperature < 0 || *r.Temperature > 2) {
		return fmt.Errorf("ir: temperature must be in [0, 2]")
	}
	return nil
}

// CompletionChoice is one completion alternative.
type CompletionChoice struct {
	Text         string  `json:"text"`
	Index        int     `json:"index"`
	FinishReason *string `json:"finish_reason"`
}

// CompletionResponse is the /v1/completions response body — the same
// shape is used for SSE stream chunks.
type CompletionResponse struct {
	ID      string             `json:"id"`
	Object  string             `json:"object"`
	Created int64              `json:"created"`
	Model   string             `json:"model"`
	Choices []CompletionChoice `json:"choices"`
	Usage   *Usage             `json:"usage,omitempty"`
}

// InputField accepts the embeddings API's input as either a single
// string or an array of strings.
type InputField []string

// UnmarshalJSON implements json.Unmarshaler.
func (p *InputField) UnmarshalJSON(b []byte) error {
	if string(b) == "null" {
		*p = nil
		return nil
	}
	var s string
	if err := json.Unmarshal(b, &s); err == nil {
		*p = InputField{s}
		return nil
	}
	var ss []string
	if err := json.Unmarshal(b, &ss); err == nil {
		*p = InputField(ss)
		return nil
	}
	return fmt.Errorf("ir: input must be a string or array of strings")
}

// MarshalJSON implements json.Marshaler: a single input round-trips as
// a plain string.
func (p InputField) MarshalJSON() ([]byte, error) {
	if len(p) == 1 {
		return json.Marshal(p[0])
	}
	return json.Marshal([]string(p))
}

// EmbeddingsRequest is the POST /v1/embeddings payload.
type EmbeddingsRequest struct {
	Model string     `json:"model"`
	Input InputField `json:"input"`
	User  string     `json:"user,omitempty"`
}

// Validate checks the request's structural requirements.
func (r *EmbeddingsRequest) Validate() error {
	if r.Model == "" {
		return fmt.Errorf("ir: missing required field: model")
	}
	if len(r.Input) == 0 {
		return fmt.Errorf("ir: input must be non-empty")
	}
	return nil
}

// Embedding is one output vector.
type Embedding struct {
	Object    string    `json:"object"` // "embedding"
	Index     int       `json:"index"`
	Embedding []float64 `json:"embedding"`
}

// EmbeddingsResponse is the /v1/embeddings response body.
type EmbeddingsResponse struct {
	Object string      `json:"object"` // "list"
	Data   []Embedding `json:"data"`
	Model  string      `json:"model"`
	Usage  Usage       `json:"usage"`
}

// RerankRequest is the POST /v1/rerank payload (the Cohere/Jina shape
// adopted by vLLM and TEI).
type RerankRequest struct {
	Model     string   `json:"model"`
	Query     string   `json:"query"`
	Documents []string `json:"documents"`
	TopN      int      `json:"top_n,omitempty"`
}

// Validate checks the request's structural requirements.
func (r *RerankRequest) Validate() error {
	if r.Model == "" {
		return fmt.Errorf("ir: missing required field: model")
	}
	if r.Query == "" {
		return fmt.Errorf("ir: missing required field: query")
	}
	if len(r.Documents) == 0 {
		return fmt.Errorf("ir: documents must be non-empty")
	}
	if r.TopN < 0 {
		return fmt.Errorf("ir: top_n must be non-negative")
	}
	return nil
}

// RerankResult is one scored document.
type RerankResult struct {
	Index          int     `json:"index"`
	RelevanceScore float64 `json:"relevance_score"`
}

// RerankResponse is the /v1/rerank response body.
type RerankResponse struct {
	Model   string         `json:"model"`
	Results []RerankResult `json:"results"`
	Usage   Usage          `json:"usage"`
}

// ModelInfo describes one served model in GET /v1/models.
type ModelInfo struct {
	ID      string `json:"id"`
	Object  string `json:"object"`
	Created int64  `json:"created"`
	OwnedBy string `json:"owned_by"`
	// Capabilities lists the protocol families the model serves
	// ("chat", "completion", "embeddings", "rerank", "vision", "audio").
	Capabilities []string `json:"capabilities,omitempty"`
}

// ModelList is the GET /v1/models response body.
type ModelList struct {
	Object string      `json:"object"`
	Data   []ModelInfo `json:"data"`
}

// APIError is the OpenAI error detail object.
type APIError struct {
	Message string `json:"message"`
	Type    string `json:"type"`
	Code    string `json:"code,omitempty"`
	Param   string `json:"param,omitempty"`
}

// Error implements the error interface.
func (e *APIError) Error() string {
	return fmt.Sprintf("ir: %s (%s)", e.Message, e.Type)
}

// ErrorEnvelope is the wire format for API errors.
type ErrorEnvelope struct {
	Error APIError `json:"error"`
}

// NewErrorEnvelope builds an error envelope with the given type and
// message.
func NewErrorEnvelope(typ, msg string) ErrorEnvelope {
	return ErrorEnvelope{Error: APIError{Message: msg, Type: typ}}
}
