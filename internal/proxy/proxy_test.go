package proxy

import (
	"errors"
	"strings"
	"testing"

	"swapservellm/internal/chaos"
	"swapservellm/internal/metrics"
	"swapservellm/internal/proxy/ir"
)

func TestDefaultTableLookup(t *testing.T) {
	f := New()
	cases := []struct {
		path     string
		protocol Protocol
		family   ir.Family
		framing  ir.Framing
		upstream string
	}{
		{"/v1/chat/completions", ProtocolOpenAI, ir.FamilyChat, ir.FramingSSE, "/v1/chat/completions"},
		{"/v1/completions", ProtocolOpenAI, ir.FamilyCompletion, ir.FramingSSE, "/v1/completions"},
		{"/v1/embeddings", ProtocolOpenAI, ir.FamilyEmbeddings, "", "/v1/embeddings"},
		{"/v1/rerank", ProtocolOpenAI, ir.FamilyRerank, "", "/v1/rerank"},
		{"/v1/models", ProtocolOpenAI, ir.FamilyList, "", ""},
		{"/api/chat", ProtocolOllama, ir.FamilyChat, ir.FramingNDJSON, "/v1/chat/completions"},
		{"/api/generate", ProtocolOllama, ir.FamilyGenerate, ir.FramingNDJSON, "/v1/chat/completions"},
		{"/api/tags", ProtocolOllama, ir.FamilyList, "", ""},
	}
	if len(f.Table()) != len(cases) {
		t.Fatalf("table has %d rows, test covers %d", len(f.Table()), len(cases))
	}
	for _, c := range cases {
		ep, ok := f.Endpoint(c.path)
		if !ok {
			t.Fatalf("endpoint %s missing", c.path)
		}
		if ep.Protocol != c.protocol || ep.Family != c.family || ep.Framing != c.framing || ep.Upstream != c.upstream {
			t.Fatalf("endpoint %s = %+v, want %+v", c.path, ep, c)
		}
	}
	if _, ok := f.Endpoint("/v1/nonesuch"); ok {
		t.Fatal("unknown path must not resolve")
	}
}

func TestMetricName(t *testing.T) {
	ep := Endpoint{Path: "/v1/chat/completions"}
	if got := ep.MetricName(); got != "v1_chat_completions" {
		t.Fatalf("MetricName = %q", got)
	}
	ep = Endpoint{Path: "/api/generate"}
	if got := ep.MetricName(); got != "api_generate" {
		t.Fatalf("MetricName = %q", got)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := newCache(2)
	c.put("a", []byte("1"))
	c.put("b", []byte("2"))
	if _, ok := c.get("a"); !ok {
		t.Fatal("a evicted early")
	}
	c.put("c", []byte("3")) // evicts b (a was just touched)
	if _, ok := c.get("b"); ok {
		t.Fatal("b should have been evicted as least recently used")
	}
	if _, ok := c.get("a"); !ok {
		t.Fatal("a lost")
	}
	if _, ok := c.get("c"); !ok {
		t.Fatal("c lost")
	}
	if c.len() != 2 {
		t.Fatalf("len = %d", c.len())
	}
}

func TestCacheRevisionInvalidation(t *testing.T) {
	c := newCache(8)
	body := []byte(`{"model":"m","messages":[]}`)
	k0 := c.key("/v1/chat/completions", "m", body)
	c.put(k0, []byte("resp"))
	if _, ok := c.get(c.key("/v1/chat/completions", "m", body)); !ok {
		t.Fatal("stable key must hit")
	}
	if rev := c.bumpRevision("m"); rev != 1 {
		t.Fatalf("rev = %d", rev)
	}
	k1 := c.key("/v1/chat/completions", "m", body)
	if k0 == k1 {
		t.Fatal("revision bump must change the key")
	}
	if _, ok := c.get(k1); ok {
		t.Fatal("post-bump lookup must miss: cached responses never cross revisions")
	}
	// Other models' keys are unaffected.
	if got := c.revision("other"); got != 0 {
		t.Fatalf("unrelated model revision = %d", got)
	}
}

func TestFrontCacheAccounting(t *testing.T) {
	reg := metrics.NewRegistry()
	f := New(WithCacheEntries(16), WithRegistry(reg))
	ep, _ := f.Endpoint("/api/chat")
	canonical := []byte(`{"model":"m","messages":[{"role":"user","content":"hi"}]}`)

	if _, ok := f.CacheLookup(ep, "m", canonical, false); ok {
		t.Fatal("cold lookup must miss")
	}
	f.CacheStore(ep, "m", canonical, []byte(`{"answer":1}`))
	body, ok := f.CacheLookup(ep, "m", canonical, false)
	if !ok || string(body) != `{"answer":1}` {
		t.Fatalf("warm lookup = %q, %v", body, ok)
	}

	// Cross-protocol sharing: the OpenAI sibling endpoint has the same
	// upstream, so the same canonical body hits the same entry.
	oa, _ := f.Endpoint("/v1/chat/completions")
	if _, ok := f.CacheLookup(oa, "m", canonical, false); !ok {
		t.Fatal("protocol siblings must share cache entries")
	}

	// Cache-Control: no-store bypasses without consulting the cache.
	if _, ok := f.CacheLookup(ep, "m", canonical, true); ok {
		t.Fatal("no-store must bypass")
	}

	// Revision bump invalidates.
	f.BumpRevision("m")
	if _, ok := f.CacheLookup(ep, "m", canonical, false); ok {
		t.Fatal("lookup after revision bump must miss")
	}

	if got := reg.Counter("proxy_cache_hits").Value(); got != 2 {
		t.Fatalf("hits = %v", got)
	}
	if got := reg.Counter("proxy_cache_misses").Value(); got != 2 {
		t.Fatalf("misses = %v", got)
	}
	if got := reg.Counter("proxy_cache_bypass").Value(); got != 1 {
		t.Fatalf("bypass = %v", got)
	}
	if got := reg.Counter("proxy_cache_hits_api_chat").Value(); got != 1 {
		t.Fatalf("per-endpoint hits = %v", got)
	}
	if got := reg.Gauge("proxy_cache_hit_ratio").Value(); got != 0.5 {
		t.Fatalf("hit ratio = %v", got)
	}
	if got := reg.Gauge("proxy_cache_entries").Value(); got != 1 {
		t.Fatalf("entries gauge = %v", got)
	}
}

func TestFrontCacheDisabled(t *testing.T) {
	f := New() // no WithCacheEntries
	if f.CacheEnabled() {
		t.Fatal("cache must default off in a bare Front")
	}
	ep, _ := f.Endpoint("/v1/chat/completions")
	if _, ok := f.CacheLookup(ep, "m", []byte("x"), false); ok {
		t.Fatal("disabled cache must miss")
	}
	f.CacheStore(ep, "m", []byte("x"), []byte("y")) // must not panic
	if rev := f.BumpRevision("m"); rev != 0 {
		t.Fatalf("BumpRevision on disabled cache = %d", rev)
	}
}

func TestDecodeTranslateChaos(t *testing.T) {
	inj := chaos.NewInjector(chaos.MustParsePlan("seed=1; proxy.translate: times=1"))
	f := New(WithChaos(inj))
	ep, _ := f.Endpoint("/api/chat")
	body := []byte(`{"model":"m","messages":[{"role":"user","content":"hi"}]}`)

	_, err := f.Decode(ep, body)
	if !errors.Is(err, ErrTranslate) {
		t.Fatalf("first decode must fail with ErrTranslate, got %v", err)
	}
	req, err := f.Decode(ep, body)
	if err != nil {
		t.Fatalf("second decode: %v", err)
	}
	if req.Family != ir.FamilyChat || req.Model != "m" || !req.Stream {
		t.Fatalf("decoded request = %+v", req)
	}
}

func TestCacheChaosBypass(t *testing.T) {
	reg := metrics.NewRegistry()
	inj := chaos.NewInjector(chaos.MustParsePlan("seed=1; proxy.cache: times=1"))
	f := New(WithCacheEntries(16), WithChaos(inj), WithRegistry(reg))
	ep, _ := f.Endpoint("/v1/chat/completions")
	canonical := []byte(`{"model":"m","messages":[{"role":"user","content":"hi"}]}`)

	f.CacheStore(ep, "m", canonical, []byte("resp"))
	if _, ok := f.CacheLookup(ep, "m", canonical, false); ok {
		t.Fatal("chaos-degraded lookup must bypass, never serve")
	}
	if got := reg.Counter("proxy_cache_bypass_v1_chat_completions").Value(); got != 1 {
		t.Fatalf("bypass counter = %v", got)
	}
	if _, ok := f.CacheLookup(ep, "m", canonical, false); !ok {
		t.Fatal("lookup after chaos window must hit")
	}
}

func TestDecodeRejectsBadPayload(t *testing.T) {
	f := New()
	ep, _ := f.Endpoint("/v1/chat/completions")
	if _, err := f.Decode(ep, []byte(`{"model":"m","messages":[]}`)); !errors.Is(err, ir.ErrDecode) {
		t.Fatalf("want ErrDecode, got %v", err)
	}
}

func TestTranslateResponsePassthroughAndOllama(t *testing.T) {
	f := New()
	canonical := []byte(`{"id":"chatcmpl-1","object":"chat.completion","created":100,"model":"m","choices":[{"index":0,"message":{"role":"assistant","content":"hi"},"finish_reason":"stop"}],"usage":{"prompt_tokens":3,"completion_tokens":1,"total_tokens":4}}`)

	oa, _ := f.Endpoint("/v1/chat/completions")
	out, err := f.TranslateResponse(oa, canonical)
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != string(canonical) {
		t.Fatal("openai responses must pass through byte-exact")
	}

	ol, _ := f.Endpoint("/api/generate")
	out, err = f.TranslateResponse(ol, canonical)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(out), `"response":"hi"`) || !strings.Contains(string(out), `"done":true`) {
		t.Fatalf("ollama generate translation = %s", out)
	}
}

func TestStreamTranslatorPassthrough(t *testing.T) {
	f := New()
	ep, _ := f.Endpoint("/v1/chat/completions")
	tr := f.Translator(ep)
	if !tr.Passthrough() || tr.ContentType() != "text/event-stream" {
		t.Fatalf("openai translator = passthrough %v, %q", tr.Passthrough(), tr.ContentType())
	}
	event := `data: {"object":"chat.completion.chunk","choices":[{"index":0,"delta":{"role":"","content":"x"},"finish_reason":null}]}`
	frames, done, err := tr.Frames(event)
	if err != nil || done {
		t.Fatalf("Frames: %v done=%v", err, done)
	}
	if string(frames) != event+"\n\n" {
		t.Fatalf("passthrough must re-frame verbatim, got %q", frames)
	}
	frames, done, err = tr.Frames("data: [DONE]")
	if err != nil || !done {
		t.Fatalf("[DONE]: %v done=%v", err, done)
	}
	if string(frames) != "data: [DONE]\n\n" {
		t.Fatalf("[DONE] frame = %q", frames)
	}
}

func TestStreamTranslatorNDJSON(t *testing.T) {
	f := New()
	ep, _ := f.Endpoint("/api/chat")
	tr := f.Translator(ep)
	if tr.Passthrough() || tr.ContentType() != "application/x-ndjson" {
		t.Fatalf("ollama translator = passthrough %v, %q", tr.Passthrough(), tr.ContentType())
	}
	frames, done, err := tr.Frames(`data: {"model":"m","object":"chat.completion.chunk","choices":[{"index":0,"delta":{"role":"assistant","content":"x"},"finish_reason":null}]}`)
	if err != nil || done {
		t.Fatalf("content frame: %v done=%v", err, done)
	}
	if !strings.HasSuffix(string(frames), "\n") || !strings.Contains(string(frames), `"content":"x"`) {
		t.Fatalf("ndjson frame = %q", frames)
	}
	// The [DONE] sentinel emits nothing (the done line already closed the
	// stream) but still reports done so the relay stops.
	frames, done, err = tr.Frames("data: [DONE]")
	if err != nil || !done {
		t.Fatalf("[DONE]: %v done=%v", err, done)
	}
	if len(frames) != 0 {
		t.Fatalf("[DONE] must emit no NDJSON frame, got %q", frames)
	}
}

func TestCodecUnknownProtocol(t *testing.T) {
	f := New()
	if _, err := f.Codec(Protocol("grpc")); !errors.Is(err, ErrUnknownProtocol) {
		t.Fatalf("want ErrUnknownProtocol, got %v", err)
	}
}
