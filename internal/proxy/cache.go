package proxy

import (
	"container/list"
	"fmt"
	"hash/fnv"
	"sync"
)

// cache is the IR-keyed response cache: a bounded LRU over canonical
// (upstream-encoded) request bodies. Keying on the canonical encoding
// rather than the client wire bytes means an Ollama /api/chat request
// and an OpenAI /v1/chat/completions request asking the same question
// share one entry. Each model carries a revision counter; bumping it
// (model weights replaced, operator invalidation) changes every key
// for that model, so a cached response is never served across model
// revisions.
type cache struct {
	mu      sync.Mutex
	max     int
	order   *list.List // front = most recently used
	entries map[string]*list.Element
	revs    map[string]uint64
}

// cacheEntry is one stored response.
type cacheEntry struct {
	key  string
	body []byte
}

// newCache builds a cache bounded to max entries (max <= 0 disables).
func newCache(max int) *cache {
	if max <= 0 {
		return nil
	}
	return &cache{
		max:     max,
		order:   list.New(),
		entries: make(map[string]*list.Element),
		revs:    make(map[string]uint64),
	}
}

// key derives the cache key for one request: endpoint-family-scoped,
// model-revision-scoped, content-addressed by the canonical body.
func (c *cache) key(upstream, model string, canonical []byte) string {
	c.mu.Lock()
	rev := c.revs[model]
	c.mu.Unlock()
	h := fnv.New64a()
	h.Write(canonical)
	return fmt.Sprintf("%s|%s|r%d|%016x", upstream, model, rev, h.Sum64())
}

// get returns the cached response for key, refreshing its recency.
func (c *cache) get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).body, true
}

// put stores a response under key, evicting the least recently used
// entry when full.
func (c *cache) put(key string, body []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		el.Value.(*cacheEntry).body = body
		c.order.MoveToFront(el)
		return
	}
	for c.order.Len() >= c.max {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheEntry).key)
	}
	c.entries[key] = c.order.PushFront(&cacheEntry{key: key, body: body})
}

// bumpRevision advances a model's revision, invalidating every cached
// response for it, and returns the new revision.
func (c *cache) bumpRevision(model string) uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.revs[model]++
	return c.revs[model]
}

// revision returns a model's current revision.
func (c *cache) revision(model string) uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.revs[model]
}

// len returns the live entry count.
func (c *cache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}
