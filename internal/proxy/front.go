// Package proxy is the multi-protocol front door: a declarative
// endpoint table routing OpenAI (/v1/*, SSE) and Ollama (/api/*,
// NDJSON) traffic through the protocol-neutral IR in
// internal/proxy/ir, plus an IR-keyed response cache in front of
// placement. Both the cluster gateway and the node router consume the
// same table, so adding an endpoint is one table row, and every
// protocol reaches the same canonical upstream encoding — which is
// what makes deterministic cross-node stream resume work identically
// under SSE and NDJSON framing.
package proxy

import (
	"fmt"

	"swapservellm/internal/chaos"
	"swapservellm/internal/metrics"
	"swapservellm/internal/proxy/ir"
	"swapservellm/internal/simclock"
)

// Options tunes Front construction.
type Options struct {
	// Table overrides the endpoint table (default: DefaultTable).
	Table []Endpoint
	// CacheEntries bounds the response cache (0 disables it).
	CacheEntries int
	// Chaos, when set, is consulted at the proxy.translate and
	// proxy.cache fault sites.
	Chaos *chaos.Injector
	// Registry, when set, receives per-endpoint cache hit/miss/bypass
	// counters and hit-ratio gauges.
	Registry *metrics.Registry
	// Clock, when set, charges chaos delay outcomes as simulated
	// latency (without it delays are ignored).
	Clock simclock.Clock
}

// Option mutates Options during New (the functional mirror of
// cluster.Option).
type Option func(*Options)

// WithTable overrides the endpoint table.
func WithTable(table []Endpoint) Option { return func(o *Options) { o.Table = table } }

// WithCacheEntries bounds the response cache (0 disables it).
func WithCacheEntries(n int) Option { return func(o *Options) { o.CacheEntries = n } }

// WithChaos installs the shared fault injector.
func WithChaos(inj *chaos.Injector) Option { return func(o *Options) { o.Chaos = inj } }

// WithRegistry installs the metrics registry for cache accounting.
func WithRegistry(reg *metrics.Registry) Option { return func(o *Options) { o.Registry = reg } }

// WithClock installs the simulation clock for chaos delay outcomes.
func WithClock(clock simclock.Clock) Option { return func(o *Options) { o.Clock = clock } }

// Front is the assembled front door: the endpoint table, the codec
// registry, and the response cache. Safe for concurrent use.
type Front struct {
	table  []Endpoint
	byPath map[string]Endpoint
	codecs map[Protocol]ir.Codec
	cache  *cache
	inj    *chaos.Injector
	reg    *metrics.Registry
	clock  simclock.Clock
}

// New builds a front door, applying functional options.
func New(opts ...Option) *Front {
	var o Options
	for _, opt := range opts {
		if opt != nil {
			opt(&o)
		}
	}
	table := o.Table
	if table == nil {
		table = DefaultTable()
	}
	f := &Front{
		table:  table,
		byPath: make(map[string]Endpoint, len(table)),
		codecs: map[Protocol]ir.Codec{
			ProtocolOpenAI: ir.OpenAICodec{},
			ProtocolOllama: ir.OllamaCodec{},
		},
		cache: newCache(o.CacheEntries),
		inj:   o.Chaos,
		reg:   o.Registry,
		clock: o.Clock,
	}
	for _, ep := range table {
		f.byPath[ep.Path] = ep
	}
	return f
}

// Table returns the endpoint table.
func (f *Front) Table() []Endpoint { return f.table }

// Endpoint looks a route up by client-facing path.
func (f *Front) Endpoint(path string) (Endpoint, bool) {
	ep, ok := f.byPath[path]
	return ep, ok
}

// Codec returns the codec for a protocol.
func (f *Front) Codec(p Protocol) (ir.Codec, error) {
	c, ok := f.codecs[p]
	if !ok {
		return nil, fmt.Errorf("%w %q", ErrUnknownProtocol, p)
	}
	return c, nil
}

// sleep charges a chaos delay when a clock is configured.
func (f *Front) sleep(out chaos.Outcome) {
	if out.Delay > 0 && f.clock != nil {
		f.clock.Sleep(out.Delay)
	}
}

// Decode translates one client request body into the IR via the
// endpoint's codec. The proxy.translate chaos site fires here: an
// injected fault surfaces as ErrTranslate, which the caller answers
// with a well-formed protocol error instead of forwarding garbage.
func (f *Front) Decode(ep Endpoint, body []byte) (*ir.Request, error) {
	if out := f.inj.At(chaos.SiteProxyTranslate); out.Err != nil || out.Delay > 0 {
		f.sleep(out)
		if out.Err != nil {
			return nil, fmt.Errorf("%w: %s: %w", ErrTranslate, ep.Path, out.Err)
		}
	}
	codec, err := f.Codec(ep.Protocol)
	if err != nil {
		return nil, err
	}
	req, err := codec.DecodeRequest(ep.Family, body)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", ep.Path, err)
	}
	return req, nil
}

// EncodeUpstream renders the canonical upstream body every protocol
// forwards as (the OpenAI encoding the simulated engines speak).
func (f *Front) EncodeUpstream(req *ir.Request) ([]byte, error) {
	return ir.OpenAICodec{}.EncodeRequest(req)
}

// TranslateResponse re-encodes a canonical (upstream) buffered response
// for the endpoint's clients. OpenAI endpoints pass bytes through
// untouched.
func (f *Front) TranslateResponse(ep Endpoint, canonical []byte) ([]byte, error) {
	if ep.Protocol == ProtocolOpenAI {
		return canonical, nil
	}
	codec, err := f.Codec(ep.Protocol)
	if err != nil {
		return nil, err
	}
	resp, err := (ir.OpenAICodec{}).DecodeResponse(ep.Family, canonical)
	if err != nil {
		return nil, fmt.Errorf("%w: %s: %w", ErrTranslate, ep.Path, err)
	}
	out, err := codec.EncodeResponse(resp)
	if err != nil {
		return nil, fmt.Errorf("%w: %s: %w", ErrTranslate, ep.Path, err)
	}
	return out, nil
}

// Translator builds the stream translator for an endpoint.
func (f *Front) Translator(ep Endpoint) *StreamTranslator {
	codec, err := f.Codec(ep.Protocol)
	if err != nil {
		codec = ir.OpenAICodec{}
	}
	return &StreamTranslator{
		family:      ep.Family,
		out:         codec,
		passthrough: ep.Protocol == ProtocolOpenAI,
	}
}

// CacheEnabled reports whether the response cache is configured.
func (f *Front) CacheEnabled() bool { return f.cache != nil }

// CacheLen returns the live cache entry count (0 when disabled).
func (f *Front) CacheLen() int {
	if f.cache == nil {
		return 0
	}
	return f.cache.len()
}

// CacheLookup consults the response cache for a non-streaming request:
// the key is the endpoint's canonical upstream path + model revision +
// canonical body hash, so protocol siblings share entries and a
// revision bump invalidates them. noStore (the client sent
// Cache-Control: no-store) and the proxy.cache chaos site both bypass
// the cache — counted as bypasses, never served stale. Returns the
// canonical response body on a hit.
func (f *Front) CacheLookup(ep Endpoint, model string, canonical []byte, noStore bool) ([]byte, bool) {
	if f.cache == nil || !ep.Cacheable {
		return nil, false
	}
	if noStore {
		f.countCache(ep, "bypass")
		return nil, false
	}
	if out := f.inj.At(chaos.SiteProxyCache); out.Err != nil || out.Delay > 0 {
		f.sleep(out)
		if out.Err != nil {
			f.countCache(ep, "bypass")
			return nil, false
		}
	}
	body, ok := f.cache.get(f.cache.key(ep.Upstream, model, canonical))
	if ok {
		f.countCache(ep, "hits")
	} else {
		f.countCache(ep, "misses")
	}
	return body, ok
}

// CacheStore records a canonical response for a request previously
// looked up with CacheLookup.
func (f *Front) CacheStore(ep Endpoint, model string, canonical, resp []byte) {
	if f.cache == nil || !ep.Cacheable {
		return
	}
	body := make([]byte, len(resp))
	copy(body, resp)
	f.cache.put(f.cache.key(ep.Upstream, model, canonical), body)
	if f.reg != nil {
		f.reg.Gauge("proxy_cache_entries").Set(float64(f.cache.len()))
	}
}

// BumpRevision advances a model's cache revision (invalidating its
// cached responses) and returns the new revision. Safe to call with
// the cache disabled (returns 0).
func (f *Front) BumpRevision(model string) uint64 {
	if f.cache == nil {
		return 0
	}
	return f.cache.bumpRevision(model)
}

// Revision returns a model's current cache revision.
func (f *Front) Revision(model string) uint64 {
	if f.cache == nil {
		return 0
	}
	return f.cache.revision(model)
}

// countCache bumps one per-endpoint cache counter and refreshes the
// hit-ratio gauges (hits over decided lookups; bypasses excluded).
// Gauges registered here surface in both the Prometheus /metrics
// exposition and the deterministic CSV export automatically.
func (f *Front) countCache(ep Endpoint, outcome string) {
	if f.reg == nil {
		return
	}
	name := ep.MetricName()
	f.reg.Counter("proxy_cache_" + outcome).Inc()
	f.reg.Counter("proxy_cache_" + outcome + "_" + name).Inc()
	hits := f.reg.Counter("proxy_cache_hits").Value()
	misses := f.reg.Counter("proxy_cache_misses").Value()
	if total := hits + misses; total > 0 {
		f.reg.Gauge("proxy_cache_hit_ratio").Set(hits / total)
	}
	epHits := f.reg.Counter("proxy_cache_hits_" + name).Value()
	epMisses := f.reg.Counter("proxy_cache_misses_" + name).Value()
	if total := epHits + epMisses; total > 0 {
		f.reg.Gauge("proxy_cache_hit_ratio_" + name).Set(epHits / total)
	}
}
