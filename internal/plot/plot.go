// Package plot renders experiment results as terminal charts — the Go
// equivalent of the artifact's Python plotting scripts. Horizontal bar
// charts cover the latency comparisons (Figures 2, 5, 6); column
// sparklines cover the time series (Figures 1, 3).
package plot

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// BarRow is one labelled value in a bar chart.
type BarRow struct {
	Label string
	Value float64
}

// Bars renders a horizontal bar chart: one row per value, bars scaled to
// width characters against the maximum.
func Bars(w io.Writer, title, unit string, rows []BarRow, width int) {
	if width <= 0 {
		width = 50
	}
	if title != "" {
		fmt.Fprintln(w, title)
	}
	maxVal := 0.0
	labelW := 0
	for _, r := range rows {
		if r.Value > maxVal {
			maxVal = r.Value
		}
		if len(r.Label) > labelW {
			labelW = len(r.Label)
		}
	}
	for _, r := range rows {
		n := 0
		if maxVal > 0 {
			n = int(math.Round(r.Value / maxVal * float64(width)))
		}
		if n < 0 {
			n = 0
		}
		fmt.Fprintf(w, "  %-*s %s %.2f%s\n", labelW, r.Label, strings.Repeat("█", n), r.Value, unit)
	}
}

// GroupedBars renders one bar block per series, sharing a global scale so
// series are visually comparable (e.g. disk vs memory vs snapshot loads).
func GroupedBars(w io.Writer, title, unit string, labels []string, series []NamedSeries, width int) {
	if width <= 0 {
		width = 50
	}
	if title != "" {
		fmt.Fprintln(w, title)
	}
	maxVal := 0.0
	labelW := 0
	for _, l := range labels {
		if len(l) > labelW {
			labelW = len(l)
		}
	}
	for _, s := range series {
		for _, v := range s.Values {
			if v > maxVal {
				maxVal = v
			}
		}
	}
	for _, s := range series {
		fmt.Fprintf(w, " %s:\n", s.Name)
		for i, l := range labels {
			if i >= len(s.Values) {
				break
			}
			n := 0
			if maxVal > 0 {
				n = int(math.Round(s.Values[i] / maxVal * float64(width)))
			}
			fmt.Fprintf(w, "  %-*s %s %.2f%s\n", labelW, l, strings.Repeat("█", n), s.Values[i], unit)
		}
	}
}

// NamedSeries is one series in a grouped chart.
type NamedSeries struct {
	Name   string
	Values []float64
}

// sparks are the eight column heights of a sparkline.
var sparks = []rune(" ▁▂▃▄▅▆▇█")

// Sparkline renders values as a single-line column chart scaled to the
// series maximum.
func Sparkline(w io.Writer, title string, values []float64) {
	if title != "" {
		fmt.Fprintf(w, "%s ", title)
	}
	maxVal := 0.0
	for _, v := range values {
		if v > maxVal {
			maxVal = v
		}
	}
	var sb strings.Builder
	for _, v := range values {
		idx := 0
		if maxVal > 0 {
			idx = int(math.Round(v / maxVal * float64(len(sparks)-1)))
		}
		if idx < 0 {
			idx = 0
		}
		if idx >= len(sparks) {
			idx = len(sparks) - 1
		}
		sb.WriteRune(sparks[idx])
	}
	fmt.Fprintf(w, "|%s| max=%.2f\n", sb.String(), maxVal)
}

// Downsample reduces values to at most buckets points by averaging equal
// spans — long series (a month of 15-minute samples) fit one terminal
// line.
func Downsample(values []float64, buckets int) []float64 {
	if buckets <= 0 || len(values) <= buckets {
		out := make([]float64, len(values))
		copy(out, values)
		return out
	}
	out := make([]float64, buckets)
	span := float64(len(values)) / float64(buckets)
	for i := 0; i < buckets; i++ {
		lo := int(float64(i) * span)
		hi := int(float64(i+1) * span)
		if hi <= lo {
			hi = lo + 1
		}
		if hi > len(values) {
			hi = len(values)
		}
		var sum float64
		for _, v := range values[lo:hi] {
			sum += v
		}
		out[i] = sum / float64(hi-lo)
	}
	return out
}
