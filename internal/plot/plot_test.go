package plot

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestBars(t *testing.T) {
	var sb strings.Builder
	Bars(&sb, "Cold starts", "s", []BarRow{
		{Label: "ollama", Value: 4.38},
		{Label: "vllm", Value: 87.28},
	}, 40)
	out := sb.String()
	if !strings.Contains(out, "Cold starts") || !strings.Contains(out, "ollama") {
		t.Fatalf("output = %q", out)
	}
	// The larger value gets the full-width bar.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	vllmBars := strings.Count(lines[2], "█")
	ollamaBars := strings.Count(lines[1], "█")
	if vllmBars != 40 {
		t.Fatalf("max bar = %d chars, want 40", vllmBars)
	}
	if ollamaBars >= vllmBars || ollamaBars < 1 {
		t.Fatalf("small bar = %d chars", ollamaBars)
	}
	if !strings.Contains(lines[2], "87.28s") {
		t.Fatalf("value missing: %q", lines[2])
	}
}

func TestBarsEmptyAndZero(t *testing.T) {
	var sb strings.Builder
	Bars(&sb, "", "s", []BarRow{{Label: "z", Value: 0}}, 10)
	if !strings.Contains(sb.String(), "0.00s") {
		t.Fatalf("zero row = %q", sb.String())
	}
	sb.Reset()
	Bars(&sb, "t", "s", nil, 0)
	if !strings.Contains(sb.String(), "t") {
		t.Fatal("title missing for empty chart")
	}
}

func TestGroupedBars(t *testing.T) {
	var sb strings.Builder
	GroupedBars(&sb, "Loads", "s", []string{"1.5B", "14B"}, []NamedSeries{
		{Name: "disk", Values: []float64{5, 41}},
		{Name: "snapshot", Values: []float64{0.9, 3.6}},
	}, 40)
	out := sb.String()
	for _, want := range []string{"disk:", "snapshot:", "1.5B", "14B"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in %q", want, out)
		}
	}
	// Shared scale: the disk 41s bar is the widest overall.
	var widest int
	for _, line := range strings.Split(out, "\n") {
		if n := strings.Count(line, "█"); n > widest {
			widest = n
		}
	}
	if widest != 40 {
		t.Fatalf("widest bar = %d, want 40", widest)
	}
}

func TestSparkline(t *testing.T) {
	var sb strings.Builder
	Sparkline(&sb, "util", []float64{0, 0.5, 1.0})
	out := sb.String()
	if !strings.Contains(out, "util") || !strings.Contains(out, "max=1.00") {
		t.Fatalf("output = %q", out)
	}
	if !strings.ContainsRune(out, '█') {
		t.Fatal("max value not rendered as full block")
	}
}

func TestDownsample(t *testing.T) {
	in := make([]float64, 100)
	for i := range in {
		in[i] = float64(i)
	}
	out := Downsample(in, 10)
	if len(out) != 10 {
		t.Fatalf("len = %d", len(out))
	}
	// Averages increase monotonically for a ramp.
	for i := 1; i < len(out); i++ {
		if out[i] <= out[i-1] {
			t.Fatalf("not monotone: %v", out)
		}
	}
	// Short series pass through.
	short := Downsample([]float64{1, 2}, 10)
	if len(short) != 2 || short[0] != 1 {
		t.Fatalf("short = %v", short)
	}
}

// Property: downsampling preserves the overall mean (within float noise).
func TestDownsampleMeanProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		in := make([]float64, len(raw))
		var sum float64
		for i, v := range raw {
			in[i] = float64(v)
			sum += float64(v)
		}
		mean := sum / float64(len(in))
		out := Downsample(in, 7)
		// Bucket means weighted by bucket sizes reproduce the global mean
		// only for equal buckets; allow generous tolerance.
		var outSum float64
		for _, v := range out {
			outSum += v
		}
		outMean := outSum / float64(len(out))
		diff := outMean - mean
		if diff < 0 {
			diff = -diff
		}
		return diff <= mean*0.5+1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
