package gpu

import (
	"fmt"
	"testing"
	"time"

	"swapservellm/internal/perfmodel"
)

func BenchmarkAllocFree(b *testing.B) {
	d := NewDevice(0, perfmodel.GPUH100, 80*gib)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d.Alloc("bench", gib)
		d.FreeOwner("bench")
	}
}

func BenchmarkAllocFreeManyOwners(b *testing.B) {
	d := NewDevice(0, perfmodel.GPUH100, 1<<50)
	for i := 0; i < 64; i++ {
		d.Alloc(fmt.Sprintf("resident-%d", i), gib)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Alloc("bench", gib)
		d.FreeOwner("bench")
	}
}

func BenchmarkStats(b *testing.B) {
	d := NewDevice(0, perfmodel.GPUH100, 80*gib)
	for i := 0; i < 8; i++ {
		d.Alloc(fmt.Sprintf("o%d", i), gib)
		d.SetBusy(fmt.Sprintf("o%d", i), 0.1)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Stats()
	}
}

func BenchmarkUsageIntegralTracking(b *testing.B) {
	d := NewDevice(0, perfmodel.GPUH100, 80*gib)
	now := time.Now()
	d.EnableUsageTracking(func() time.Time { now = now.Add(time.Millisecond); return now })
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Alloc("bench", gib)
		d.FreeOwner("bench")
	}
	if d.UsageIntegral() <= 0 {
		b.Fatal("no usage accumulated")
	}
}
