package gpu

import (
	"fmt"

	"swapservellm/internal/perfmodel"
)

// Topology is the set of GPUs in one server, as defined for each inference
// backend during initialization (§6, Multi-GPU Orchestration).
type Topology struct {
	devices []*Device
}

// NewTopology builds a topology of count identical devices.
func NewTopology(kind perfmodel.GPUKind, count int, bytesPerDevice int64) *Topology {
	if count <= 0 {
		panic("gpu: topology needs at least one device")
	}
	t := &Topology{devices: make([]*Device, count)}
	for i := range t.devices {
		t.devices[i] = NewDevice(i, kind, bytesPerDevice)
	}
	return t
}

// FromTestbed builds the topology described by a perfmodel testbed profile.
func FromTestbed(tb perfmodel.Testbed) *Topology {
	return NewTopology(tb.GPU, tb.GPUCount, tb.GPUMemBytes)
}

// Device returns the device with index id.
func (t *Topology) Device(id int) (*Device, error) {
	if id < 0 || id >= len(t.devices) {
		return nil, fmt.Errorf("gpu: no device %d in topology of %d", id, len(t.devices))
	}
	return t.devices[id], nil
}

// Devices returns all devices in index order.
func (t *Topology) Devices() []*Device {
	out := make([]*Device, len(t.devices))
	copy(out, t.devices)
	return out
}

// Len returns the number of devices.
func (t *Topology) Len() int { return len(t.devices) }

// TotalFree returns the sum of free bytes across all devices.
func (t *Topology) TotalFree() int64 {
	var free int64
	for _, d := range t.devices {
		free += d.Free()
	}
	return free
}

// Monitor is an NVML-style sampler over a topology: the GPU monitor of
// §3.1 that the task manager uses to observe memory utilization and inform
// scheduling decisions.
type Monitor struct {
	topo *Topology
}

// NewMonitor returns a monitor over topo.
func NewMonitor(topo *Topology) *Monitor { return &Monitor{topo: topo} }

// Sample returns per-device statistics in device order.
func (m *Monitor) Sample() []Stats {
	out := make([]Stats, 0, m.topo.Len())
	for _, d := range m.topo.Devices() {
		out = append(out, d.Stats())
	}
	return out
}

// FreeBytes returns the free bytes on device id, or an error for an
// unknown device.
func (m *Monitor) FreeBytes(id int) (int64, error) {
	d, err := m.topo.Device(id)
	if err != nil {
		return 0, err
	}
	return d.Free(), nil
}
