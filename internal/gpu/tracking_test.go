package gpu

import (
	"testing"
	"time"

	"swapservellm/internal/perfmodel"
)

// fakeClock is a hand-advanced time source for integral tests.
type fakeClock struct{ t time.Time }

func (f *fakeClock) now() time.Time { return f.t }
func (f *fakeClock) advance(d time.Duration) {
	f.t = f.t.Add(d)
}

func TestUsageIntegralExact(t *testing.T) {
	d := NewDevice(0, perfmodel.GPUH100, 80*gib)
	fc := &fakeClock{t: time.Unix(1000, 0)}
	d.EnableUsageTracking(fc.now)

	// 10 GiB for 5 seconds.
	d.Alloc("a", 10*gib)
	fc.advance(5 * time.Second)
	// Grow to 30 GiB for 2 seconds.
	d.Alloc("a", 20*gib)
	fc.advance(2 * time.Second)
	// Free everything for 3 seconds.
	d.FreeOwner("a")
	fc.advance(3 * time.Second)

	want := float64(10*gib)*5 + float64(30*gib)*2 + 0*3
	if got := d.UsageIntegral(); got != want {
		t.Fatalf("integral = %v, want %v", got, want)
	}
}

func TestUsageIntegralZeroWithoutTracking(t *testing.T) {
	d := NewDevice(0, perfmodel.GPUH100, 80*gib)
	d.Alloc("a", gib)
	if got := d.UsageIntegral(); got != 0 {
		t.Fatalf("integral without tracking = %v", got)
	}
}

func TestUsageIntegralResizeAccounted(t *testing.T) {
	d := NewDevice(0, perfmodel.GPUH100, 80*gib)
	fc := &fakeClock{t: time.Unix(0, 0)}
	d.EnableUsageTracking(fc.now)
	d.Alloc("a", 4*gib)
	fc.advance(10 * time.Second)
	d.Resize("a", 2*gib)
	fc.advance(10 * time.Second)
	want := float64(4*gib)*10 + float64(2*gib)*10
	if got := d.UsageIntegral(); got != want {
		t.Fatalf("integral = %v, want %v", got, want)
	}
}

func TestUsageIntegralQueryAccumulates(t *testing.T) {
	// Reading the integral mid-flight includes the elapsed time since the
	// last change.
	d := NewDevice(0, perfmodel.GPUH100, 80*gib)
	fc := &fakeClock{t: time.Unix(0, 0)}
	d.EnableUsageTracking(fc.now)
	d.Alloc("a", gib)
	fc.advance(7 * time.Second)
	if got, want := d.UsageIntegral(), float64(gib)*7; got != want {
		t.Fatalf("integral = %v, want %v", got, want)
	}
}
