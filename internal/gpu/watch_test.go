package gpu

import (
	"testing"

	"swapservellm/internal/perfmodel"
)

func TestWatchSignalsOnFree(t *testing.T) {
	d := NewDevice(0, perfmodel.GPUH100, 100)
	ch := make(chan struct{}, 1)
	d.Watch(ch)

	if err := d.Alloc("a", 40); err != nil {
		t.Fatal(err)
	}
	select {
	case <-ch:
		t.Fatal("Alloc must not signal watchers")
	default:
	}

	if _, err := d.FreeOwner("a"); err != nil {
		t.Fatal(err)
	}
	select {
	case <-ch:
	default:
		t.Fatal("FreeOwner did not signal watcher")
	}
}

func TestWatchSignalsOnShrinkOnly(t *testing.T) {
	d := NewDevice(0, perfmodel.GPUH100, 100)
	ch := make(chan struct{}, 1)
	d.Watch(ch)

	if err := d.Resize("a", 50); err != nil {
		t.Fatal(err)
	}
	select {
	case <-ch:
		t.Fatal("growing resize must not signal watchers")
	default:
	}

	if err := d.Resize("a", 20); err != nil {
		t.Fatal(err)
	}
	select {
	case <-ch:
	default:
		t.Fatal("shrinking resize did not signal watcher")
	}
}

func TestUnwatchStopsSignals(t *testing.T) {
	d := NewDevice(0, perfmodel.GPUH100, 100)
	ch := make(chan struct{}, 1)
	d.Watch(ch)
	d.Unwatch(ch)
	if err := d.Alloc("a", 10); err != nil {
		t.Fatal(err)
	}
	if _, err := d.FreeOwner("a"); err != nil {
		t.Fatal(err)
	}
	select {
	case <-ch:
		t.Fatal("unwatched channel still signaled")
	default:
	}
}

func TestWatchSendNeverBlocks(t *testing.T) {
	d := NewDevice(0, perfmodel.GPUH100, 100)
	ch := make(chan struct{}, 1)
	d.Watch(ch)
	for i := 0; i < 3; i++ { // repeated frees coalesce into the buffer
		if err := d.Alloc("a", 10); err != nil {
			t.Fatal(err)
		}
		if _, err := d.FreeOwner("a"); err != nil {
			t.Fatal(err)
		}
	}
	<-ch
}
