package gpu

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"testing/quick"

	"swapservellm/internal/perfmodel"
)

const gib = int64(1) << 30

func newTestDevice() *Device {
	return NewDevice(0, perfmodel.GPUH100, 80*gib)
}

func TestAllocAndFree(t *testing.T) {
	d := newTestDevice()
	if err := d.Alloc("vllm-a", 30*gib); err != nil {
		t.Fatalf("Alloc: %v", err)
	}
	if err := d.Alloc("ollama-b", 20*gib); err != nil {
		t.Fatalf("Alloc: %v", err)
	}
	if got := d.Used(); got != 50*gib {
		t.Fatalf("Used = %d, want %d", got, 50*gib)
	}
	if got := d.Free(); got != 30*gib {
		t.Fatalf("Free = %d, want %d", got, 30*gib)
	}
	freed, err := d.FreeOwner("vllm-a")
	if err != nil || freed != 30*gib {
		t.Fatalf("FreeOwner = %d, %v", freed, err)
	}
	if got := d.Used(); got != 20*gib {
		t.Fatalf("Used after free = %d, want %d", got, 20*gib)
	}
}

func TestAllocAccumulates(t *testing.T) {
	d := newTestDevice()
	d.Alloc("e", 10*gib)
	d.Alloc("e", 5*gib)
	if got := d.OwnerUsage("e"); got != 15*gib {
		t.Fatalf("OwnerUsage = %d, want %d", got, 15*gib)
	}
}

func TestAllocOutOfMemory(t *testing.T) {
	d := newTestDevice()
	if err := d.Alloc("big", 81*gib); !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("expected ErrOutOfMemory, got %v", err)
	}
	d.Alloc("a", 79*gib)
	if err := d.Alloc("b", 2*gib); !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("expected ErrOutOfMemory for second alloc, got %v", err)
	}
	// The failed allocation must not change accounting.
	if got := d.Used(); got != 79*gib {
		t.Fatalf("failed alloc changed Used to %d", got)
	}
}

func TestAllocNegative(t *testing.T) {
	d := newTestDevice()
	if err := d.Alloc("x", -1); err == nil {
		t.Fatal("negative alloc should fail")
	}
}

func TestFreeUnknownOwner(t *testing.T) {
	d := newTestDevice()
	if _, err := d.FreeOwner("ghost"); !errors.Is(err, ErrUnknownOwner) {
		t.Fatalf("expected ErrUnknownOwner, got %v", err)
	}
}

func TestResize(t *testing.T) {
	d := newTestDevice()
	d.Alloc("e", 10*gib)
	if err := d.Resize("e", 40*gib); err != nil {
		t.Fatalf("grow: %v", err)
	}
	if got := d.OwnerUsage("e"); got != 40*gib {
		t.Fatalf("after grow OwnerUsage = %d", got)
	}
	if err := d.Resize("e", 5*gib); err != nil {
		t.Fatalf("shrink: %v", err)
	}
	if got := d.Used(); got != 5*gib {
		t.Fatalf("after shrink Used = %d", got)
	}
	if err := d.Resize("e", 0); err != nil {
		t.Fatalf("resize to zero: %v", err)
	}
	if got := d.OwnerUsage("e"); got != 0 {
		t.Fatalf("after zero resize OwnerUsage = %d", got)
	}
}

func TestResizeOOM(t *testing.T) {
	d := newTestDevice()
	d.Alloc("a", 70*gib)
	d.Alloc("b", 5*gib)
	if err := d.Resize("b", 20*gib); !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("expected ErrOutOfMemory, got %v", err)
	}
	if got := d.OwnerUsage("b"); got != 5*gib {
		t.Fatalf("failed resize changed usage to %d", got)
	}
}

func TestUtilization(t *testing.T) {
	d := newTestDevice()
	if u := d.Utilization(); u != 0 {
		t.Fatalf("idle utilization = %v", u)
	}
	d.SetBusy("a", 0.3)
	d.SetBusy("b", 0.5)
	if u := d.Utilization(); u < 0.79 || u > 0.81 {
		t.Fatalf("utilization = %v, want 0.8", u)
	}
	d.SetBusy("a", 0.9) // sum capped at 1
	if u := d.Utilization(); u != 1 {
		t.Fatalf("capped utilization = %v, want 1", u)
	}
	d.SetBusy("a", 0)
	d.SetBusy("b", 0)
	if u := d.Utilization(); u != 0 {
		t.Fatalf("cleared utilization = %v", u)
	}
	d.SetBusy("c", 7)    // clamped to 1
	d.SetBusy("d", -0.5) // clamped to 0
	if u := d.Utilization(); u != 1 {
		t.Fatalf("clamped utilization = %v, want 1", u)
	}
}

func TestOwnersSorted(t *testing.T) {
	d := newTestDevice()
	d.Alloc("small", 1*gib)
	d.Alloc("large", 40*gib)
	d.Alloc("mid", 10*gib)
	owners := d.Owners()
	if len(owners) != 3 {
		t.Fatalf("got %d owners", len(owners))
	}
	if owners[0].Name != "large" || owners[1].Name != "mid" || owners[2].Name != "small" {
		t.Fatalf("owners not sorted by bytes: %+v", owners)
	}
}

func TestStatsSnapshot(t *testing.T) {
	d := newTestDevice()
	d.Alloc("a", 12*gib)
	d.SetBusy("a", 0.25)
	s := d.Stats()
	if s.UsedBytes != 12*gib || s.TotalBytes != 80*gib || s.Utilization != 0.25 {
		t.Fatalf("stats = %+v", s)
	}
	if s.Kind != perfmodel.GPUH100 || s.ID != 0 {
		t.Fatalf("identity fields wrong: %+v", s)
	}
}

func TestFreeOwnerClearsBusy(t *testing.T) {
	d := newTestDevice()
	d.Alloc("a", gib)
	d.SetBusy("a", 0.7)
	d.FreeOwner("a")
	if u := d.Utilization(); u != 0 {
		t.Fatalf("utilization after FreeOwner = %v", u)
	}
}

func TestNewDevicePanicsOnBadCapacity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for zero capacity")
		}
	}()
	NewDevice(0, perfmodel.GPUA100, 0)
}

func TestConcurrentAllocFree(t *testing.T) {
	d := newTestDevice()
	const workers = 16
	const iters = 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		owner := fmt.Sprintf("w%d", w)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				if err := d.Alloc(owner, gib); err == nil {
					d.FreeOwner(owner)
				}
			}
		}()
	}
	wg.Wait()
	// After all paired alloc/free cycles the device must be empty.
	if got := d.Used(); got != 0 {
		t.Fatalf("leaked %d bytes after concurrent churn", got)
	}
}

// Property: the allocation invariant 0 <= Used <= Total holds under any
// sequence of alloc/free operations.
func TestAllocationInvariantProperty(t *testing.T) {
	type op struct {
		Owner byte
		Bytes uint32
		Free  bool
	}
	f := func(ops []op) bool {
		d := NewDevice(0, perfmodel.GPUA100, 1<<30)
		for _, o := range ops {
			owner := fmt.Sprintf("o%d", o.Owner%8)
			if o.Free {
				d.FreeOwner(owner)
			} else {
				d.Alloc(owner, int64(o.Bytes))
			}
			used := d.Used()
			if used < 0 || used > d.Total() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Used equals the sum of per-owner usages.
func TestUsedEqualsOwnerSumProperty(t *testing.T) {
	f := func(allocs []uint16) bool {
		d := NewDevice(0, perfmodel.GPUH100, 1<<40)
		var want int64
		for i, a := range allocs {
			owner := fmt.Sprintf("o%d", i%5)
			if d.Alloc(owner, int64(a)) == nil {
				want += int64(a)
			}
		}
		var sum int64
		for _, o := range d.Owners() {
			sum += o.Bytes
		}
		return d.Used() == want && sum == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTopology(t *testing.T) {
	topo := NewTopology(perfmodel.GPUH100, 4, 80*gib)
	if topo.Len() != 4 {
		t.Fatalf("Len = %d", topo.Len())
	}
	d2, err := topo.Device(2)
	if err != nil || d2.ID() != 2 {
		t.Fatalf("Device(2) = %v, %v", d2, err)
	}
	if _, err := topo.Device(4); err == nil {
		t.Fatal("Device(4) should fail")
	}
	if _, err := topo.Device(-1); err == nil {
		t.Fatal("Device(-1) should fail")
	}
	d2.Alloc("x", 10*gib)
	if free := topo.TotalFree(); free != 4*80*gib-10*gib {
		t.Fatalf("TotalFree = %d", free)
	}
}

func TestFromTestbed(t *testing.T) {
	topo := FromTestbed(perfmodel.H100())
	if topo.Len() != 1 {
		t.Fatalf("H100 testbed should have 1 GPU, got %d", topo.Len())
	}
	d, _ := topo.Device(0)
	if d.Total() != 80*gib {
		t.Fatalf("capacity = %d, want 80 GiB", d.Total())
	}
}

func TestMonitorSample(t *testing.T) {
	topo := NewTopology(perfmodel.GPUA100, 2, 80*gib)
	mon := NewMonitor(topo)
	d0, _ := topo.Device(0)
	d0.Alloc("m", 16*gib)
	stats := mon.Sample()
	if len(stats) != 2 {
		t.Fatalf("Sample returned %d entries", len(stats))
	}
	if stats[0].UsedBytes != 16*gib || stats[1].UsedBytes != 0 {
		t.Fatalf("sample = %+v", stats)
	}
	free, err := mon.FreeBytes(0)
	if err != nil || free != 64*gib {
		t.Fatalf("FreeBytes = %d, %v", free, err)
	}
	if _, err := mon.FreeBytes(9); err == nil {
		t.Fatal("FreeBytes(9) should fail")
	}
}

func TestTopologyPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for empty topology")
		}
	}()
	NewTopology(perfmodel.GPUH100, 0, gib)
}
