// Package gpu simulates NVIDIA GPU devices for the SwapServeLLM
// reproduction: memory allocation with out-of-memory semantics, per-owner
// accounting, compute-utilization tracking, and an NVML-style monitor used
// by the task manager to observe memory utilization (§3.1's GPU monitor).
package gpu

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"swapservellm/internal/perfmodel"
)

// ErrOutOfMemory is returned when an allocation does not fit in the
// device's free memory.
var ErrOutOfMemory = errors.New("gpu: out of memory")

// ErrUnknownOwner is returned when freeing or querying an owner that holds
// no allocations.
var ErrUnknownOwner = errors.New("gpu: unknown owner")

// Device simulates a single GPU: a fixed memory capacity carved into
// per-owner allocations, plus a compute-utilization aggregate. All methods
// are safe for concurrent use.
type Device struct {
	id    int
	kind  perfmodel.GPUKind
	total int64

	mu       sync.Mutex
	owners   map[string]int64   // owner -> allocated bytes
	busy     map[string]float64 // owner -> compute utilization share [0,1]
	watchers map[chan struct{}]struct{}

	// Usage-integral tracking (for cost accounting): byteSeconds
	// accumulates Used()·dt exactly on every allocation change, avoiding
	// any polling.
	trackNow    func() time.Time
	trackedAt   time.Time
	byteSeconds float64
}

// NewDevice creates a device with the given index, product kind, and
// memory capacity in bytes.
func NewDevice(id int, kind perfmodel.GPUKind, totalBytes int64) *Device {
	if totalBytes <= 0 {
		panic(fmt.Sprintf("gpu: non-positive capacity %d", totalBytes))
	}
	return &Device{
		id:     id,
		kind:   kind,
		total:  totalBytes,
		owners: make(map[string]int64),
		busy:   make(map[string]float64),
	}
}

// ID returns the device index.
func (d *Device) ID() int { return d.id }

// Kind returns the GPU product kind.
func (d *Device) Kind() perfmodel.GPUKind { return d.kind }

// Total returns the device memory capacity in bytes.
func (d *Device) Total() int64 { return d.total }

// Used returns the currently allocated bytes.
func (d *Device) Used() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.usedLocked()
}

func (d *Device) usedLocked() int64 {
	var used int64
	for _, b := range d.owners {
		used += b
	}
	return used
}

// Free returns the unallocated bytes.
func (d *Device) Free() int64 { return d.total - d.Used() }

// Alloc reserves bytes for owner, accumulating onto any existing
// allocation. It fails with ErrOutOfMemory when the device cannot fit the
// request.
func (d *Device) Alloc(owner string, bytes int64) error {
	if bytes < 0 {
		return fmt.Errorf("gpu: negative allocation %d for %q", bytes, owner)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.usedLocked()+bytes > d.total {
		return fmt.Errorf("%w: need %d, free %d on gpu %d",
			ErrOutOfMemory, bytes, d.total-d.usedLocked(), d.id)
	}
	d.accumulateLocked()
	d.owners[owner] += bytes
	return nil
}

// OwnerUsage returns the bytes currently held by owner (zero if none).
func (d *Device) OwnerUsage(owner string) int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.owners[owner]
}

// FreeOwner releases every allocation held by owner and returns the number
// of bytes released.
func (d *Device) FreeOwner(owner string) (int64, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	bytes, ok := d.owners[owner]
	if !ok {
		return 0, fmt.Errorf("%w: %q on gpu %d", ErrUnknownOwner, owner, d.id)
	}
	d.accumulateLocked()
	delete(d.owners, owner)
	delete(d.busy, owner)
	if bytes > 0 {
		d.notifyFreedLocked()
	}
	return bytes, nil
}

// Watch registers ch to receive a (non-blocking, coalescing) signal
// whenever device memory is freed — an owner releases its allocation or
// resizes it down. Callers that wait for capacity (the pipelined
// restore path) pass a buffered channel and re-try their allocation on
// every signal. The channel is never closed by the device.
func (d *Device) Watch(ch chan struct{}) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.watchers == nil {
		d.watchers = make(map[chan struct{}]struct{})
	}
	d.watchers[ch] = struct{}{}
}

// Unwatch removes a channel registered with Watch.
func (d *Device) Unwatch(ch chan struct{}) {
	d.mu.Lock()
	defer d.mu.Unlock()
	delete(d.watchers, ch)
}

// notifyFreedLocked signals every watcher that capacity was released.
// Sends never block: a watcher with a full buffer already has a pending
// wakeup, which is sufficient for retry loops. Caller holds d.mu.
func (d *Device) notifyFreedLocked() {
	for ch := range d.watchers {
		select {
		case ch <- struct{}{}:
		default:
		}
	}
}

// Resize adjusts owner's allocation to exactly bytes (used by engines that
// grow or shrink their KV cache). Growing may fail with ErrOutOfMemory.
func (d *Device) Resize(owner string, bytes int64) error {
	if bytes < 0 {
		return fmt.Errorf("gpu: negative resize %d for %q", bytes, owner)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	cur := d.owners[owner]
	if delta := bytes - cur; delta > 0 && d.usedLocked()+delta > d.total {
		return fmt.Errorf("%w: resize needs %d more, free %d on gpu %d",
			ErrOutOfMemory, delta, d.total-d.usedLocked(), d.id)
	}
	d.accumulateLocked()
	if bytes == 0 {
		delete(d.owners, owner)
	} else {
		d.owners[owner] = bytes
	}
	if bytes < cur {
		d.notifyFreedLocked()
	}
	return nil
}

// SetBusy records owner's current compute-utilization share in [0,1]. The
// device's utilization is the capped sum over owners.
func (d *Device) SetBusy(owner string, share float64) {
	if share < 0 {
		share = 0
	}
	if share > 1 {
		share = 1
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if share == 0 {
		delete(d.busy, owner)
		return
	}
	d.busy[owner] = share
}

// Utilization returns the instantaneous compute utilization in [0,1].
func (d *Device) Utilization() float64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	var u float64
	for _, s := range d.busy {
		u += s
	}
	if u > 1 {
		u = 1
	}
	return u
}

// Owners returns the owners holding allocations, sorted by descending
// bytes then name — the order the task manager inspects candidates in.
func (d *Device) Owners() []Owner {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]Owner, 0, len(d.owners))
	for name, b := range d.owners {
		out = append(out, Owner{Name: name, Bytes: b})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Bytes != out[j].Bytes {
			return out[i].Bytes > out[j].Bytes
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// EnableUsageTracking starts exact usage-integral accounting on the
// device, timestamped by now (typically a simulation clock's Now). The
// integral accumulates on every allocation change — no polling.
func (d *Device) EnableUsageTracking(now func() time.Time) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.trackNow = now
	d.trackedAt = now()
	d.byteSeconds = 0
}

// accumulateLocked folds the elapsed used·dt into the integral. Caller
// holds d.mu.
func (d *Device) accumulateLocked() {
	if d.trackNow == nil {
		return
	}
	now := d.trackNow()
	dt := now.Sub(d.trackedAt).Seconds()
	if dt > 0 {
		d.byteSeconds += float64(d.usedLocked()) * dt
	}
	d.trackedAt = now
}

// UsageIntegral returns the exact byte·seconds of memory occupancy since
// tracking was enabled (zero when tracking is off).
func (d *Device) UsageIntegral() float64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.accumulateLocked()
	return d.byteSeconds
}

// Owner pairs an allocation owner with its byte count.
type Owner struct {
	Name  string
	Bytes int64
}

// Stats is a point-in-time snapshot of a device, as exposed by the
// monitor.
type Stats struct {
	ID          int
	Kind        perfmodel.GPUKind
	TotalBytes  int64
	UsedBytes   int64
	Utilization float64
}

// Stats returns the device's current statistics.
func (d *Device) Stats() Stats {
	d.mu.Lock()
	defer d.mu.Unlock()
	var u float64
	for _, s := range d.busy {
		u += s
	}
	if u > 1 {
		u = 1
	}
	return Stats{
		ID:          d.id,
		Kind:        d.kind,
		TotalBytes:  d.total,
		UsedBytes:   d.usedLocked(),
		Utilization: u,
	}
}
