package cudackpt

import (
	"strconv"

	"swapservellm/internal/ckptstore"
)

// This file wires the driver to the content-addressed checkpoint store
// (internal/ckptstore). With a store attached, every checkpoint image
// is decomposed into the driver's transfer chunks and addressed by
// content identity:
//
//   - the weight region [0, weightBytes) is keyed by the process's
//     content key (the model name), so replicas of one model share
//     weight chunks across images — and across nodes, which is what
//     makes peer-to-peer restore fetch work;
//   - the dynamic region (KV cache, activations) is keyed by the
//     content key while pristine (dirty generation 0 — the post-init
//     state is model-determined) and by (pid, generation) once the
//     engine has served traffic (MarkDirty).
//
// Re-checkpointing a model whose chunks are all still resident skips
// every D2H copy: the steady-state swap-out of an idle model is a
// near-no-op (delta checkpoint). The driver's logical per-image ledger
// (host/disk usage, pledges, the conservation invariant) is untouched;
// the store keeps the physical deduplicated ledger underneath it. All
// new behavior is gated on AttachStore — a driver without a store is
// byte-for-byte the pre-store engine.

// AttachStore installs the content-addressed checkpoint store under the
// driver. Checkpoints then commit chunk manifests, restores are planned
// per chunk against the cheapest source (local RAM, peer RAM, local
// disk, peer disk), and spills demote by chunk reference instead of
// whole-image writes.
func (d *Driver) AttachStore(s *ckptstore.Store) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.store = s
}

// Store returns the attached checkpoint store (nil when detached).
func (d *Driver) Store() *ckptstore.Store {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.store
}

// SetContentKey names pid's weight content (typically the model name).
// Processes sharing a content key deduplicate their weight-region
// chunks; without one, chunks are keyed by pid and dedup only covers
// repeated checkpoints of the same process.
func (d *Driver) SetContentKey(pid, key string) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	p, err := d.get(pid)
	if err != nil {
		return err
	}
	p.ckey = key
	return nil
}

// MarkDirty records that pid's dynamic GPU region (KV cache) changed —
// the server calls this when a request completes. The next checkpoint
// re-keys the dynamic chunks so their stale content is not reused;
// weight chunks stay clean. Unknown pids are ignored (the backend may
// already be unregistering).
func (d *Driver) MarkDirty(pid string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if p, ok := d.procs[pid]; ok {
		p.dirtyGen++
	}
}

// chunkPlanLocked builds pid's content-addressed manifest for an image
// of the given size, cut at the driver's transfer-chunk granularity.
// Caller holds d.mu.
func (d *Driver) chunkPlanLocked(p *proc, bytes int64) []ckptstore.ChunkRef {
	ckey := p.ckey
	if ckey == "" {
		ckey = p.pid
	}
	gen := strconv.FormatInt(p.dirtyGen, 10)
	var refs []ckptstore.ChunkRef
	var off int64
	for i := 0; off < bytes; i++ {
		c := min(d.chunkBytes, bytes-off)
		idx := strconv.Itoa(i)
		size := strconv.FormatInt(c, 10)
		var id ckptstore.ChunkID
		switch {
		case off+c <= p.weightBytes:
			id = ckptstore.ChunkKey(ckey, "w", idx, size)
		case p.dirtyGen == 0:
			id = ckptstore.ChunkKey(ckey, "z", idx, size)
		default:
			id = ckptstore.ChunkKey(p.pid, "d", idx, size, gen)
		}
		refs = append(refs, ckptstore.ChunkRef{ID: id, Bytes: c})
		off += c
	}
	return refs
}
