package cudackpt

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"swapservellm/internal/chaos"
	"swapservellm/internal/perfmodel"
)

// TestChunkedAccountingBalancedAtEveryBoundary audits the conservation
// invariant at every chunk boundary of a full suspend/resume cycle:
// device bytes + image bytes must equal the transfer goal, and the
// driver's host usage must equal the sum of all images.
func TestChunkedAccountingBalancedAtEveryBoundary(t *testing.T) {
	d, dev, _ := newDriver(t, 0)
	if err := dev.Alloc("p", 12*gib); err != nil {
		t.Fatal(err)
	}
	if err := d.Register("p", dev, perfmodel.EngineOllama, gib); err != nil {
		t.Fatal(err)
	}

	var mu sync.Mutex
	var d2h, h2d int
	var violations []string
	d.OnChunk(func(ev ChunkEvent) {
		mu.Lock()
		defer mu.Unlock()
		if ev.Dir == perfmodel.DirD2H {
			d2h++
		} else {
			h2d++
		}
		var imageSum int64
		for _, pi := range d.ProcInfos() {
			if pi.Transferring {
				if pi.DeviceBytes+pi.ImageBytes != pi.TransferGoal {
					violations = append(violations, "conservation broken for "+pi.PID)
				}
			}
			if pi.Loc == LocRAM {
				imageSum += pi.ImageBytes
			}
		}
		if d.HostUsed() != imageSum {
			violations = append(violations, "hostUsed != image sum")
		}
	})

	if _, err := d.Suspend(context.Background(), "p"); err != nil {
		t.Fatal(err)
	}
	if err := d.Resume(context.Background(), "p"); err != nil {
		t.Fatal(err)
	}

	mu.Lock()
	defer mu.Unlock()
	if len(violations) > 0 {
		t.Fatalf("chunk-boundary violations: %v", violations)
	}
	if d2h != 12 || h2d != 12 {
		t.Fatalf("chunk events d2h=%d h2d=%d, want 12 each for a 12 GiB image", d2h, h2d)
	}
	if got := d.HostPledged(); got != 0 {
		t.Fatalf("host pledge leaked: %d", got)
	}
}

// TestMonolithicChunkSizeMatchesChunkedTiming proves the chunk split is
// timing-neutral: the same cycle with chunking disabled takes the same
// simulated time and emits exactly one chunk event per direction.
func TestMonolithicChunkSizeMatchesChunkedTiming(t *testing.T) {
	elapsed := func(chunkBytes int64) (time.Duration, int) {
		d, dev, clock := newDriver(t, 0)
		d.SetChunkBytes(chunkBytes)
		if err := dev.Alloc("p", 8*gib); err != nil {
			t.Fatal(err)
		}
		if err := d.Register("p", dev, perfmodel.EngineOllama, gib); err != nil {
			t.Fatal(err)
		}
		events := 0
		d.OnChunk(func(ChunkEvent) { events++ })
		start := clock.Now()
		if _, err := d.Suspend(context.Background(), "p"); err != nil {
			t.Fatal(err)
		}
		if err := d.Resume(context.Background(), "p"); err != nil {
			t.Fatal(err)
		}
		return clock.Now().Sub(start), events
	}
	chunked, nChunked := elapsed(DefaultChunkBytes)
	mono, nMono := elapsed(0)
	if nChunked != 16 || nMono != 2 {
		t.Fatalf("chunk events = %d (chunked), %d (monolithic); want 16 and 2", nChunked, nMono)
	}
	diff := chunked - mono
	if diff < 0 {
		diff = -diff
	}
	// The split telescopes exactly in simulated time; allow wall-clock
	// scheduling slop from the scaled clock.
	if diff > 150*time.Millisecond {
		t.Fatalf("chunked cycle %v vs monolithic %v differ by %v", chunked, mono, diff)
	}
}

// TestChunkFaultAbortsCheckpoint exhausts the per-chunk retry budget
// mid-checkpoint and verifies the rollback: the process ends up Running
// again with its device allocation intact and no host bytes leaked.
func TestChunkFaultAbortsCheckpoint(t *testing.T) {
	d, dev, _ := newDriver(t, 0)
	if err := dev.Alloc("p", 6*gib); err != nil {
		t.Fatal(err)
	}
	if err := d.Register("p", dev, perfmodel.EngineOllama, gib); err != nil {
		t.Fatal(err)
	}
	// Fire on every consultation: the bounded internal retries exhaust
	// on the first chunk and the checkpoint aborts.
	d.SetChaos(chaos.NewInjector(chaos.Plan{Seed: 1, Rules: []chaos.Rule{
		{Site: chaos.SiteCkptChunk, P: 1},
	}}))
	_, err := d.Suspend(context.Background(), "p")
	if !errors.Is(err, chaos.ErrInjected) {
		t.Fatalf("Suspend = %v, want injected chunk fault", err)
	}
	if st, _ := d.State("p"); st != StateRunning {
		t.Fatalf("state after aborted checkpoint = %v, want running", st)
	}
	if got := dev.OwnerUsage("p"); got != 6*gib {
		t.Fatalf("device bytes after rollback = %d, want %d", got, 6*gib)
	}
	if d.HostUsed() != 0 || d.HostPledged() != 0 {
		t.Fatalf("host accounting leaked: used=%d pledged=%d", d.HostUsed(), d.HostPledged())
	}
	if img, _ := d.ImageBytes("p"); img != 0 {
		t.Fatalf("image after rollback = %d", img)
	}
}

// TestChunkFaultAbortsRestore exhausts the chunk retries mid-restore and
// verifies the rollback: the process stays Checkpointed with its full
// image and no device bytes claimed.
func TestChunkFaultAbortsRestore(t *testing.T) {
	d, dev, _ := newDriver(t, 0)
	if err := dev.Alloc("p", 6*gib); err != nil {
		t.Fatal(err)
	}
	if err := d.Register("p", dev, perfmodel.EngineOllama, gib); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Suspend(context.Background(), "p"); err != nil {
		t.Fatal(err)
	}
	// Abort partway through: the first two chunks commit, then the
	// retries exhaust on the third.
	d.SetChaos(chaos.NewInjector(chaos.Plan{Seed: 1, Rules: []chaos.Rule{
		{Site: chaos.SiteCkptChunk, P: 1, After: 2},
	}}))
	err := d.Resume(context.Background(), "p")
	if !errors.Is(err, chaos.ErrInjected) {
		t.Fatalf("Resume = %v, want injected chunk fault", err)
	}
	if st, _ := d.State("p"); st != StateCheckpointed {
		t.Fatalf("state after aborted restore = %v, want checkpointed", st)
	}
	if img, _ := d.ImageBytes("p"); img != 6*gib {
		t.Fatalf("image after rollback = %d, want %d", img, 6*gib)
	}
	if got := dev.OwnerUsage("p"); got != 0 {
		t.Fatalf("device bytes after rollback = %d, want 0", got)
	}
	if d.HostUsed() != 6*gib {
		t.Fatalf("host used after rollback = %d, want %d", d.HostUsed(), 6*gib)
	}
	// The image is still restorable once the fault clears.
	d.SetChaos(nil)
	if err := d.Resume(context.Background(), "p"); err != nil {
		t.Fatalf("Resume after rollback: %v", err)
	}
}

// TestCheckpointRollsForwardWhenCapacityClaimed pins the roll-forward
// branch: when a checkpoint aborts mid-pipeline but its freed device
// capacity has already been claimed by another workload, the driver
// cannot give the memory back, so it completes the checkpoint instead
// of rolling back.
func TestCheckpointRollsForwardWhenCapacityClaimed(t *testing.T) {
	d, dev, _ := newDriver(t, 0)
	if err := dev.Alloc("p", 8*gib); err != nil {
		t.Fatal(err)
	}
	if err := d.Register("p", dev, perfmodel.EngineOllama, gib); err != nil {
		t.Fatal(err)
	}
	// As soon as the first chunk frees capacity, a squatter grabs every
	// free byte, so the rollback's re-allocation cannot succeed.
	var once sync.Once
	d.OnChunk(func(ev ChunkEvent) {
		once.Do(func() {
			if err := dev.Alloc("squatter", dev.Free()); err != nil {
				t.Errorf("squatter alloc: %v", err)
			}
		})
	})
	// First chunk passes, then the retry budget exhausts on the second.
	d.SetChaos(chaos.NewInjector(chaos.Plan{Seed: 1, Rules: []chaos.Rule{
		{Site: chaos.SiteCkptChunk, P: 1, After: 1},
	}}))
	img, err := d.Suspend(context.Background(), "p")
	if err != nil {
		t.Fatalf("Suspend rolled back instead of forward: %v", err)
	}
	if img != 8*gib {
		t.Fatalf("image = %d, want %d", img, 8*gib)
	}
	if st, _ := d.State("p"); st != StateCheckpointed {
		t.Fatalf("state = %v, want checkpointed", st)
	}
	if got := dev.OwnerUsage("p"); got != 0 {
		t.Fatalf("device bytes after roll-forward = %d, want 0", got)
	}
	if d.HostUsed() != 8*gib || d.HostPledged() != 0 {
		t.Fatalf("host accounting: used=%d pledged=%d", d.HostUsed(), d.HostPledged())
	}
}

// TestPipelinedExchangeOverlapsTransfers drives the tentpole scenario at
// the driver level: an 72 GiB victim checkpoint (D2H) and an 72 GiB
// target restore (H2D) run concurrently on one device. Full-duplex PCIe
// means neither stretches the other, so the exchange completes in
// roughly the slower transfer's time rather than the sum.
func TestPipelinedExchangeOverlapsTransfers(t *testing.T) {
	d, dev, clock := newDriver(t, 0)
	// Build target's host image first: it runs, checkpoints out.
	if err := dev.Alloc("target", 72*gib); err != nil {
		t.Fatal(err)
	}
	if err := d.Register("target", dev, perfmodel.EngineVLLM, 16*gib); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Suspend(context.Background(), "target"); err != nil {
		t.Fatal(err)
	}
	// Victim now occupies the device.
	if err := dev.Alloc("victim", 72*gib); err != nil {
		t.Fatal(err)
	}
	if err := d.Register("victim", dev, perfmodel.EngineVLLM, 16*gib); err != nil {
		t.Fatal(err)
	}

	tb := perfmodel.H100()
	saveDur := tb.CheckpointSave(72 * gib)
	restoreDur := tb.CheckpointRestore(72*gib, 16*gib, perfmodel.EngineVLLM) -
		perfmodel.EngineResumeOverhead(perfmodel.EngineVLLM)

	start := clock.Now()
	suspendErr := make(chan error, 1)
	go func() {
		_, err := d.Suspend(context.Background(), "victim")
		suspendErr <- err
	}()
	if err := d.RestoreWait(context.Background(), "target"); err != nil {
		t.Fatalf("RestoreWait: %v", err)
	}
	if err := <-suspendErr; err != nil {
		t.Fatalf("victim Suspend: %v", err)
	}
	elapsed := clock.Now().Sub(start)

	sequential := saveDur + restoreDur
	if elapsed >= sequential*3/4 {
		t.Fatalf("pipelined exchange took %v, want < 75%% of sequential %v", elapsed, sequential)
	}
	slower := restoreDur
	if saveDur > slower {
		slower = saveDur
	}
	// The driver's transfer totals exclude the lock step (charged by
	// Lock itself), so allow one CkptLock of slack on the lower bound.
	if elapsed < slower-tb.CkptLock {
		t.Fatalf("pipelined exchange took %v, impossibly faster than slower leg %v", elapsed, slower)
	}

	if err := d.Unlock(context.Background(), "target"); err != nil {
		t.Fatal(err)
	}
	if got := dev.OwnerUsage("target"); got != 72*gib {
		t.Fatalf("target device bytes = %d, want %d", got, 72*gib)
	}
	if img, _ := d.ImageBytes("victim"); img != 72*gib {
		t.Fatalf("victim image = %d, want %d", img, 72*gib)
	}
	if d.HostUsed() != 72*gib || d.HostPledged() != 0 {
		t.Fatalf("host accounting: used=%d pledged=%d", d.HostUsed(), d.HostPledged())
	}
}

// TestRestoreWaitCancelRollsBack cancels a capacity-starved RestoreWait
// partway through and verifies the partial transfer rolls back cleanly.
func TestRestoreWaitCancelRollsBack(t *testing.T) {
	d, dev, _ := newDriver(t, 0)
	if err := dev.Alloc("p", 72*gib); err != nil {
		t.Fatal(err)
	}
	if err := d.Register("p", dev, perfmodel.EngineVLLM, 16*gib); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Suspend(context.Background(), "p"); err != nil {
		t.Fatal(err)
	}
	// A squatter leaves only 5 GiB free: the restore claims five chunks
	// and then starves waiting for capacity that never appears.
	if err := dev.Alloc("squatter", 75*gib); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	err := d.RestoreWait(ctx, "p")
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("RestoreWait = %v, want deadline exceeded", err)
	}
	if st, _ := d.State("p"); st != StateCheckpointed {
		t.Fatalf("state after cancel = %v, want checkpointed", st)
	}
	if img, _ := d.ImageBytes("p"); img != 72*gib {
		t.Fatalf("image after cancel = %d, want %d", img, 72*gib)
	}
	if got := dev.OwnerUsage("p"); got != 0 {
		t.Fatalf("device bytes after cancel = %d, want 0", got)
	}
	if d.HostUsed() != 72*gib {
		t.Fatalf("host used after cancel = %d, want %d", d.HostUsed(), 72*gib)
	}
}

// TestSuspendUnlockRetryExhausted covers the retry-exhausted branch of
// the shared transient-retry helper: when the checkpoint faults AND the
// unlock rollback keeps faulting past the retry budget, Suspend reports
// both errors and the process is left Locked.
func TestSuspendUnlockRetryExhausted(t *testing.T) {
	d, dev, _ := newDriver(t, 0)
	if err := dev.Alloc("p", 4*gib); err != nil {
		t.Fatal(err)
	}
	if err := d.Register("p", dev, perfmodel.EngineOllama, gib); err != nil {
		t.Fatal(err)
	}
	d.SetChaos(chaos.NewInjector(chaos.Plan{Seed: 1, Rules: []chaos.Rule{
		{Site: chaos.SiteCkptCheckpoint, P: 1, Times: 1},
		{Site: chaos.SiteCkptUnlock, P: 1, Times: 4},
	}}))
	_, err := d.Suspend(context.Background(), "p")
	if !errors.Is(err, chaos.ErrInjected) {
		t.Fatalf("Suspend = %v, want injected fault", err)
	}
	if st, _ := d.State("p"); st != StateLocked {
		t.Fatalf("state after exhausted unlock retries = %v, want locked", st)
	}
	// A later unlock (fault budget spent) recovers the process.
	if err := d.Unlock(context.Background(), "p"); err != nil {
		t.Fatal(err)
	}
	if st, _ := d.State("p"); st != StateRunning {
		t.Fatalf("state after recovery = %v, want running", st)
	}
}
