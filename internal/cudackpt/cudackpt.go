// Package cudackpt simulates NVIDIA's transparent GPU checkpoint/restore
// driver functionality (the cuda-checkpoint utility) that SwapServeLLM
// relies on for engine-agnostic hot-swapping. A registered CUDA process
// moves through the same state machine as the real driver:
//
//	Running --Lock--> Locked --Checkpoint--> Checkpointed
//	Running <--Unlock-- Locked <--Restore-- Checkpointed
//
// Checkpoint copies the process's device allocations into a host-memory
// image (freeing GPU capacity for other workloads); Restore re-allocates
// device memory and copies the image back. Transfers move in chunks
// (see chunk.go) that release or claim GPU capacity incrementally, so a
// restore can pipeline against a concurrent checkpoint over the
// full-duplex PCIe link. Transfer times follow the calibrated PCIe
// model in internal/perfmodel, enacted on the simulation clock.
package cudackpt

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"swapservellm/internal/chaos"
	"swapservellm/internal/ckptstore"
	"swapservellm/internal/gpu"
	"swapservellm/internal/obs"
	"swapservellm/internal/perfmodel"
	"swapservellm/internal/retry"
	"swapservellm/internal/simclock"
)

// State is the checkpoint state of a registered CUDA process.
type State int

// Process states, mirroring cuda-checkpoint's lock/checkpoint protocol.
const (
	StateRunning State = iota
	StateLocked
	StateCheckpointed
)

// String returns the lowercase state name.
func (s State) String() string {
	switch s {
	case StateRunning:
		return "running"
	case StateLocked:
		return "locked"
	case StateCheckpointed:
		return "checkpointed"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// proc tracks one registered CUDA process (one entry covers every
// tensor-parallel shard of the workload).
type proc struct {
	pid         string
	devices     []*gpu.Device
	engine      perfmodel.EngineKind
	weightBytes int64
	// state only changes through transitionLocked so every edge lands
	// in the audit trace.
	state        State   //swaplint:state allow=transitionLocked,RegisterSharded
	hostImage    int64   // bytes currently held in the host image
	shardBytes   []int64 // per-device bytes captured at checkpoint time
	loc          ImageLocation
	lastUsed     time.Time
	transferring bool   // a chunked checkpoint/restore is in flight
	transferGoal int64  // total bytes the in-flight transfer moves
	ckey         string // content key for weight-chunk dedup (store.go)
	dirtyGen     int64  // dynamic-region generation, bumped by MarkDirty
}

// Driver simulates the per-node checkpoint driver. All methods are safe
// for concurrent use; operations on distinct processes proceed in
// parallel, while per-process transitions are serialized.
type Driver struct {
	clock   simclock.Clock
	testbed perfmodel.Testbed

	mu          sync.Mutex
	procs       map[string]*proc
	hostUsed    int64
	hostPledged int64 // in-flight checkpoint bytes pledged against the cap
	hostCap     int64 // 0 = unlimited
	spill       bool  // spill LRU images to disk instead of failing on the cap
	diskUsed    int64
	spills      int64
	chunkBytes  int64
	links       map[int]*perfmodel.PCIeLink // device ID -> PCIe link
	chunkHooks  []func(ChunkEvent)
	chaosInj    *chaos.Injector
	trace       *chaos.Trace
	store       *ckptstore.Store // content-addressed substrate (nil = legacy)
}

// NewDriver creates a driver that times transfers against tb on clock.
// hostCapBytes bounds the total host memory available for checkpoint
// images (0 means unlimited).
func NewDriver(clock simclock.Clock, tb perfmodel.Testbed, hostCapBytes int64) *Driver {
	return &Driver{
		clock:      clock,
		testbed:    tb,
		procs:      make(map[string]*proc),
		hostCap:    hostCapBytes,
		chunkBytes: DefaultChunkBytes,
		links:      make(map[int]*perfmodel.PCIeLink),
	}
}

// Register adds a CUDA process whose device allocations are owned by pid
// on device. weightBytes parameterizes the restore first-touch cost.
func (d *Driver) Register(pid string, device *gpu.Device, engine perfmodel.EngineKind, weightBytes int64) error {
	return d.RegisterSharded(pid, []*gpu.Device{device}, engine, weightBytes)
}

// RegisterSharded adds a tensor-parallel CUDA process spanning the given
// devices; checkpoint and restore cover every shard.
func (d *Driver) RegisterSharded(pid string, devices []*gpu.Device, engine perfmodel.EngineKind, weightBytes int64) error {
	if len(devices) == 0 {
		return fmt.Errorf("cudackpt: process %q needs at least one device", pid)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, dup := d.procs[pid]; dup {
		return fmt.Errorf("%w: %q", ErrAlreadyExists, pid)
	}
	p := &proc{
		pid:         pid,
		devices:     devices,
		engine:      engine,
		weightBytes: weightBytes,
	}
	p.state = StateRunning
	d.procs[pid] = p
	return nil
}

// Unregister removes a process. A checkpointed process's host image is
// released.
func (d *Driver) Unregister(pid string) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	p, ok := d.procs[pid]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownProcess, pid)
	}
	if p.transferring {
		return fmt.Errorf("%w: unregister of %q mid-transfer", ErrBadState, pid)
	}
	if p.loc == LocDisk {
		d.diskUsed -= p.hostImage
	} else {
		d.hostUsed -= p.hostImage
	}
	delete(d.procs, pid)
	if d.store != nil {
		// Drop the manifest reference; the chunks stay cached for any
		// replica sharing the content key.
		d.store.Release(pid)
	}
	return nil
}

// State returns the current checkpoint state of pid.
func (d *Driver) State(pid string) (State, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	p, ok := d.procs[pid]
	if !ok {
		return 0, fmt.Errorf("%w: %q", ErrUnknownProcess, pid)
	}
	return p.state, nil
}

// ImageBytes returns the size of pid's host checkpoint image (zero unless
// checkpointed).
func (d *Driver) ImageBytes(pid string) (int64, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	p, ok := d.procs[pid]
	if !ok {
		return 0, fmt.Errorf("%w: %q", ErrUnknownProcess, pid)
	}
	return p.hostImage, nil
}

// HostUsed returns the total host memory consumed by checkpoint images.
func (d *Driver) HostUsed() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.hostUsed
}

// get fetches the proc or fails.
func (d *Driver) get(pid string) (*proc, error) {
	p, ok := d.procs[pid]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownProcess, pid)
	}
	return p, nil
}

// Lock quiesces a running process's CUDA activity (cuda-checkpoint
// --action lock). It must be in the Running state. ctx carries the
// active trace span; the lock itself is not interruptible (it models
// one short driver ioctl).
func (d *Driver) Lock(ctx context.Context, pid string) (err error) {
	ctx, span := obs.Start(ctx, "ckpt.lock", obs.String("pid", pid))
	defer func() { span.EndErr(err) }()
	d.mu.Lock()
	p, err := d.get(pid)
	if err != nil {
		d.mu.Unlock()
		return err
	}
	if p.state != StateRunning {
		st := p.state
		d.mu.Unlock()
		return fmt.Errorf("%w: lock from %v", ErrBadState, st)
	}
	if ferr := d.takeFaultLocked(chaos.SiteCkptLock); ferr != nil {
		d.mu.Unlock()
		obs.AnnotateFault(ctx, string(chaos.SiteCkptLock), ferr)
		return ferr
	}
	d.transitionLocked(p, StateRunning, StateLocked)
	d.mu.Unlock()
	d.clock.Sleep(d.testbed.CkptLock)
	return nil
}

// Unlock resumes a locked process (cuda-checkpoint --action unlock).
func (d *Driver) Unlock(ctx context.Context, pid string) (err error) {
	ctx, span := obs.Start(ctx, "ckpt.unlock", obs.String("pid", pid))
	defer func() { span.EndErr(err) }()
	d.mu.Lock()
	defer d.mu.Unlock()
	p, err := d.get(pid)
	if err != nil {
		return err
	}
	if p.state != StateLocked {
		return fmt.Errorf("%w: unlock from %v", ErrBadState, p.state)
	}
	if ferr := d.takeFaultLocked(chaos.SiteCkptUnlock); ferr != nil {
		obs.AnnotateFault(ctx, string(chaos.SiteCkptUnlock), ferr)
		return ferr
	}
	d.transitionLocked(p, StateLocked, StateRunning)
	return nil
}

// Checkpoint copies a locked process's device state into a host image and
// frees its GPU memory (cuda-checkpoint --action checkpoint). The copy
// moves chunk by chunk, releasing device capacity and accumulating host
// image bytes incrementally — a concurrent restore can claim the freed
// capacity before the checkpoint finishes. Returns the image size.
//
// Cancelling ctx aborts the transfer at the next chunk boundary: the
// partial image rolls back and the process stays Locked — unless a
// pipelined restore already claimed the freed device capacity, in which
// case the checkpoint rolls forward to completion (the memory cannot be
// given back).
func (d *Driver) Checkpoint(ctx context.Context, pid string) (bytes int64, err error) {
	ctx, span := obs.Start(ctx, "ckpt.checkpoint", obs.String("pid", pid))
	defer func() { span.EndErr(err) }()
	d.mu.Lock()
	p, err := d.get(pid)
	if err != nil {
		d.mu.Unlock()
		return 0, err
	}
	if p.state != StateLocked || p.transferring {
		st := p.state
		d.mu.Unlock()
		return 0, fmt.Errorf("%w: checkpoint from %v", ErrBadState, st)
	}
	if ferr := d.takeFaultLocked(chaos.SiteCkptCheckpoint); ferr != nil {
		d.mu.Unlock()
		obs.AnnotateFault(ctx, string(chaos.SiteCkptCheckpoint), ferr)
		return 0, ferr
	}
	pcie := d.pcieDelayLocked()
	shard := make([]int64, len(p.devices))
	for i, dev := range p.devices {
		shard[i] = dev.OwnerUsage(p.pid)
		bytes += shard[i]
	}
	span.SetAttr(obs.Int64("bytes", bytes))
	var spillSleep time.Duration
	if d.hostCap > 0 && d.hostUsed+d.hostPledged+bytes > d.hostCap {
		if !d.spill {
			d.mu.Unlock()
			return 0, fmt.Errorf("%w: need %d, used %d of %d", ErrHostMemory, bytes, d.hostUsed, d.hostCap)
		}
		var ok bool
		spillSleep, ok = d.spillUntilLocked(ctx, bytes, pid)
		if !ok {
			d.mu.Unlock()
			return 0, fmt.Errorf("%w: need %d, used %d of %d and nothing left to spill",
				ErrHostMemory, bytes, d.hostUsed, d.hostCap)
		}
	}
	// The whole image is pledged against the host cap up front; each
	// committed chunk converts its share of the pledge into real usage.
	d.hostPledged += bytes
	p.transferring = true
	p.transferGoal = bytes
	p.loc = LocRAM
	total := d.testbed.CheckpointSave(maxShard(shard)) - d.testbed.CkptLock
	chunk := d.chunkBytes
	links := d.linksLocked(p)
	// With a store attached, plan the image's content-addressed chunks:
	// chunks whose content is already host-resident (unchanged weights,
	// pristine or unchanged KV regions) skip their D2H copy entirely —
	// the delta checkpoint. The plan pins those chunks until commit.
	var plan []ckptstore.ChunkRef
	var clean []bool
	if d.store != nil {
		plan = d.chunkPlanLocked(p, bytes)
		clean = d.store.PlanCheckpoint(pid, plan)
	}
	d.mu.Unlock()
	d.clock.Sleep(spillSleep)

	// D2H copies run outside the driver lock so distinct processes
	// checkpoint concurrently; shards transfer in parallel over their own
	// PCIe links, so the slowest (largest) shard dominates the calibrated
	// full-transfer duration, which chunkShare splits across chunks by
	// byte share. Injected PCIe congestion charges on the first chunk
	// that actually crosses the link.
	rem := append([]int64(nil), shard...)
	var done int64
	ci := 0
	pcieCharged := false
	rollForward := false
	for done < bytes {
		c := min(chunk, bytes-done)
		share := chunkShare(total, done, done+c, bytes)
		skip := ci < len(clean) && clean[ci]
		var extra time.Duration
		if !pcieCharged && !skip {
			extra = pcie
			pcieCharged = true
		}
		if !rollForward {
			// A cancelled ctx aborts exactly like a chunk fault: before
			// this chunk commits any accounting. A delta-skipped chunk
			// crosses no link, so it consults no transfer fault site.
			ferr := ctx.Err()
			if ferr == nil && !skip {
				ferr = d.chunkFault(ctx, links, perfmodel.DirD2H, share)
			}
			if ferr != nil {
				if d.rollbackCheckpoint(p, shard, rem, done, bytes) {
					if d.store != nil {
						d.store.AbortCheckpoint(pid)
					}
					return 0, fmt.Errorf("cudackpt: checkpoint of %q aborted at %d/%d bytes: %w",
						pid, done, bytes, ferr)
				}
				// The freed capacity was already claimed (a pipelined
				// restore is moving in), so the device memory cannot be
				// given back: roll forward and finish the checkpoint,
				// skipping further fault consultation.
				rollForward = true
				continue
			}
		}
		if !skip {
			d.sleepContended(links, perfmodel.DirD2H, share+extra)
		}
		d.mu.Lock()
		d.hostPledged -= c
		d.hostUsed += c
		p.hostImage += c
		drainDevices(p, rem, c)
		d.mu.Unlock()
		done += c
		ci++
		d.emitChunk(ChunkEvent{PID: pid, Dir: perfmodel.DirD2H, Done: done, Total: bytes})
		span.Event("chunk",
			obs.String("dir", perfmodel.DirD2H.String()),
			obs.Int64("done_bytes", done), obs.Int64("total_bytes", bytes))
	}
	if bytes == 0 {
		d.clock.Sleep(total + pcie)
	}

	d.mu.Lock()
	for _, dev := range p.devices {
		// Clear any zero-byte owner entry left behind by the engine.
		dev.Resize(p.pid, 0)
	}
	p.shardBytes = shard
	d.transitionLocked(p, StateLocked, StateCheckpointed)
	p.transferring = false
	p.transferGoal = 0
	p.lastUsed = d.clock.Now()
	st := d.store
	d.mu.Unlock()
	if st != nil {
		dedup := st.CommitCheckpoint(ctx, pid)
		span.SetAttr(obs.Int64("dedup_bytes", dedup.DedupBytes),
			obs.Int64("new_bytes", dedup.NewBytes))
	}
	return bytes, nil
}

// Restore re-allocates a checkpointed process's device memory and copies
// its host image back (cuda-checkpoint --action restore), chunk by
// chunk. The process is left Locked; call Unlock to resume it. Fails
// fast with gpu.ErrOutOfMemory if the devices cannot fit the image at
// call time — eviction policy belongs to the caller. Cancelling ctx
// aborts at the next chunk boundary: the partial transfer rolls back
// and the process stays Checkpointed.
func (d *Driver) Restore(ctx context.Context, pid string) error {
	return d.restore(ctx, pid, false)
}

// RestoreWait is the pipelined-exchange variant of Restore: instead of
// failing fast when the devices cannot fit the image, each chunk waits
// for device capacity to appear (typically a concurrent checkpoint
// freeing memory chunk by chunk) or for ctx to be cancelled, in which
// case the partial transfer rolls back and the process stays
// Checkpointed.
func (d *Driver) RestoreWait(ctx context.Context, pid string) error {
	return d.restore(ctx, pid, true)
}

func (d *Driver) restore(ctx context.Context, pid string, wait bool) (err error) {
	ctx, span := obs.Start(ctx, "ckpt.restore",
		obs.String("pid", pid), obs.Bool("pipelined", wait))
	defer func() { span.EndErr(err) }()
	d.mu.Lock()
	p, err := d.get(pid)
	if err != nil {
		d.mu.Unlock()
		return err
	}
	if p.state != StateCheckpointed || p.transferring {
		st := p.state
		d.mu.Unlock()
		return fmt.Errorf("%w: restore from %v", ErrBadState, st)
	}
	if ferr := d.takeFaultLocked(chaos.SiteCkptRestore); ferr != nil {
		d.mu.Unlock()
		obs.AnnotateFault(ctx, string(chaos.SiteCkptRestore), ferr)
		return ferr
	}
	pcie := d.pcieDelayLocked()
	bytes := p.hostImage
	span.SetAttr(obs.Int64("bytes", bytes))
	shard := append([]int64(nil), p.shardBytes...)
	fromDisk := p.loc == LocDisk
	if !wait {
		for i, dev := range p.devices {
			if free := dev.Free(); free < shard[i] {
				d.mu.Unlock()
				return fmt.Errorf("%w: need %d, free %d on gpu %d",
					gpu.ErrOutOfMemory, shard[i], free, dev.ID())
			}
		}
	}
	p.transferring = true
	p.transferGoal = bytes
	// H2D copies and first-touch run outside the lock; parallel shards
	// mean the largest one dominates. The engine-resume overhead is
	// charged by the caller (engine controller), not here. A
	// disk-resident image additionally pays the disk read, spread across
	// the chunk pipeline.
	perShardWeights := p.weightBytes / int64(len(p.devices))
	total := d.testbed.CheckpointRestore(maxShard(shard), perShardWeights, p.engine) -
		d.testbed.CkptLock - perfmodel.EngineResumeOverhead(p.engine)
	chunk := d.chunkBytes
	links := d.linksLocked(p)
	st := d.store
	d.mu.Unlock()

	// With a store manifest the restore is planned per chunk against the
	// cheapest source — a chunk in local host RAM is free, one in a peer
	// replica's RAM beats the local disk read — and each chunk's fetch
	// is charged on the pipeline's critical path as it is needed. A
	// legacy image (no manifest) pays the monolithic disk read spread
	// across the chunk pipeline, as before.
	var sess *ckptstore.RestoreSession
	if st != nil {
		s, serr := st.OpenRestore(ctx, pid)
		switch {
		case serr == nil:
			sess = s
			defer func() { sess.Close(err) }()
		case !errors.Is(serr, ckptstore.ErrUnknownManifest):
			d.mu.Lock()
			p.transferring = false
			p.transferGoal = 0
			d.mu.Unlock()
			return fmt.Errorf("cudackpt: restore of %q unplannable: %w", pid, serr)
		}
	}
	if sess == nil && fromDisk {
		total += d.testbed.StorageReadTime(perfmodel.TierDisk, bytes)
	}

	var freed chan struct{}
	if wait {
		freed = make(chan struct{}, 1)
		for _, dev := range p.devices {
			dev.Watch(freed)
			defer dev.Unwatch(freed)
		}
	}

	alloced := make([]int64, len(shard))
	var done int64
	for done < bytes {
		c := min(chunk, bytes-done)
		share := chunkShare(total, done, done+c, bytes)
		var extra time.Duration
		if done == 0 {
			extra = pcie
		}
		// The fault and cancellation checks run before the chunk claims
		// capacity, so an aborted restore never leaves a half-claimed
		// chunk behind.
		ferr := ctx.Err()
		if ferr == nil {
			ferr = d.chunkFault(ctx, links, perfmodel.DirH2D, share)
		}
		if ferr == nil && sess != nil {
			// Pull this chunk's bytes to local host RAM from the planned
			// source (free when already local; peer RAM / disk otherwise,
			// with bounded-retry fallback under ckptstore.fetch faults).
			ferr = sess.FetchRange(done, done+c)
		}
		if ferr != nil {
			d.rollbackRestore(p, done, fromDisk)
			return fmt.Errorf("cudackpt: restore of %q aborted at %d/%d bytes: %w",
				pid, done, bytes, ferr)
		}
		for {
			d.mu.Lock()
			cerr := claimChunk(p, shard, alloced, c)
			if cerr == nil {
				// The chunk's bytes leave the host image the moment its
				// device copy begins, keeping device+image conservation
				// exact at every chunk boundary.
				if fromDisk {
					d.diskUsed -= c
				} else {
					d.hostUsed -= c
				}
				p.hostImage -= c
				d.mu.Unlock()
				break
			}
			d.mu.Unlock()
			if !wait {
				d.rollbackRestore(p, done, fromDisk)
				return fmt.Errorf("cudackpt: restore of %q aborted at %d/%d bytes: %w",
					pid, done, bytes, cerr)
			}
			// Idle wait for a capacity release; under a Virtual clock the
			// Block lets the concurrent suspend's chunk timers fire.
			cancelled := false
			simclock.GateFor(d.clock).Block(func() {
				select {
				case <-freed:
				case <-ctx.Done():
					cancelled = true
				}
			})
			if cancelled {
				d.rollbackRestore(p, done, fromDisk)
				return fmt.Errorf("cudackpt: restore of %q cancelled at %d/%d bytes: %w",
					pid, done, bytes, ctx.Err())
			}
		}
		done += c
		d.sleepContended(links, perfmodel.DirH2D, share+extra)
		d.emitChunk(ChunkEvent{PID: pid, Dir: perfmodel.DirH2D, Done: done, Total: bytes})
		span.Event("chunk",
			obs.String("dir", perfmodel.DirH2D.String()),
			obs.Int64("done_bytes", done), obs.Int64("total_bytes", bytes))
	}
	if bytes == 0 {
		d.clock.Sleep(total + pcie)
	}

	d.mu.Lock()
	p.hostImage = 0
	p.loc = LocRAM
	p.lastUsed = d.clock.Now()
	d.transitionLocked(p, StateCheckpointed, StateLocked)
	p.transferring = false
	p.transferGoal = 0
	d.mu.Unlock()
	if sess != nil {
		// The image left the store: drop the manifest. Its chunks stay
		// cached in their tiers — the next checkpoint of this process
		// delta-skips every chunk whose content they still match.
		st.Release(pid)
	}
	return nil
}

// Suspend is the convenience sequence Lock + Checkpoint used by the engine
// controller's swap-out path. Returns the host image size.
func (d *Driver) Suspend(ctx context.Context, pid string) (bytes int64, err error) {
	ctx, span := obs.Start(ctx, "ckpt.suspend", obs.String("pid", pid))
	defer func() { span.EndErr(err) }()
	if err := d.Lock(ctx, pid); err != nil {
		return 0, err
	}
	bytes, err = d.Checkpoint(ctx, pid)
	if err != nil {
		// Roll the lock back so the process is usable again. Unlock can
		// itself hit a transient injected fault; the shared bounded-retry
		// policy keeps a single chaos firing from wedging the process in
		// Locked. The rollback must run even when the checkpoint aborted
		// on a cancelled ctx, so it uses a fresh context carrying only
		// the trace span.
		if uerr := retry.Transient(func() error { return d.Unlock(context.WithoutCancel(ctx), pid) }); uerr != nil {
			return 0, errors.Join(err, uerr)
		}
		return 0, err
	}
	return bytes, nil
}

// maxShard returns the largest per-device byte count (zero for empty).
func maxShard(shard []int64) int64 {
	var m int64
	for _, b := range shard {
		if b > m {
			m = b
		}
	}
	return m
}

// Resume is the convenience sequence Restore + Unlock used by the engine
// controller's swap-in path.
func (d *Driver) Resume(ctx context.Context, pid string) (err error) {
	ctx, span := obs.Start(ctx, "ckpt.resume", obs.String("pid", pid))
	defer func() { span.EndErr(err) }()
	if err := d.Restore(ctx, pid); err != nil {
		return err
	}
	// The restore completed; a cancellation arriving now must not leave
	// the process wedged in Locked, so the unlock ignores it.
	return d.Unlock(context.WithoutCancel(ctx), pid)
}
