// Package cudackpt simulates NVIDIA's transparent GPU checkpoint/restore
// driver functionality (the cuda-checkpoint utility) that SwapServeLLM
// relies on for engine-agnostic hot-swapping. A registered CUDA process
// moves through the same state machine as the real driver:
//
//	Running --Lock--> Locked --Checkpoint--> Checkpointed
//	Running <--Unlock-- Locked <--Restore-- Checkpointed
//
// Checkpoint copies the process's device allocations into a host-memory
// image (freeing GPU capacity for other workloads); Restore re-allocates
// device memory and copies the image back. Transfer times follow the
// calibrated PCIe model in internal/perfmodel, enacted on the simulation
// clock.
package cudackpt

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"swapservellm/internal/chaos"
	"swapservellm/internal/gpu"
	"swapservellm/internal/perfmodel"
	"swapservellm/internal/simclock"
)

// State is the checkpoint state of a registered CUDA process.
type State int

// Process states, mirroring cuda-checkpoint's lock/checkpoint protocol.
const (
	StateRunning State = iota
	StateLocked
	StateCheckpointed
)

// String returns the lowercase state name.
func (s State) String() string {
	switch s {
	case StateRunning:
		return "running"
	case StateLocked:
		return "locked"
	case StateCheckpointed:
		return "checkpointed"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// Errors returned by the driver.
var (
	ErrUnknownProcess = errors.New("cudackpt: unknown process")
	ErrBadState       = errors.New("cudackpt: invalid state transition")
	ErrHostMemory     = errors.New("cudackpt: host memory exhausted")
	ErrAlreadyExists  = errors.New("cudackpt: process already registered")
)

// proc tracks one registered CUDA process (one entry covers every
// tensor-parallel shard of the workload).
type proc struct {
	pid         string
	devices     []*gpu.Device
	engine      perfmodel.EngineKind
	weightBytes int64
	state       State
	hostImage   int64   // total bytes held in the host image when checkpointed
	shardBytes  []int64 // per-device bytes captured at checkpoint time
	loc         ImageLocation
	lastUsed    time.Time
}

// Driver simulates the per-node checkpoint driver. All methods are safe
// for concurrent use; operations on distinct processes proceed in
// parallel, while per-process transitions are serialized.
type Driver struct {
	clock   simclock.Clock
	testbed perfmodel.Testbed

	mu       sync.Mutex
	procs    map[string]*proc
	hostUsed int64
	hostCap  int64 // 0 = unlimited
	spill    bool  // spill LRU images to disk instead of failing on the cap
	diskUsed int64
	spills   int64
	chaosInj *chaos.Injector
	trace    *chaos.Trace
}

// NewDriver creates a driver that times transfers against tb on clock.
// hostCapBytes bounds the total host memory available for checkpoint
// images (0 means unlimited).
func NewDriver(clock simclock.Clock, tb perfmodel.Testbed, hostCapBytes int64) *Driver {
	return &Driver{
		clock:   clock,
		testbed: tb,
		procs:   make(map[string]*proc),
		hostCap: hostCapBytes,
	}
}

// Register adds a CUDA process whose device allocations are owned by pid
// on device. weightBytes parameterizes the restore first-touch cost.
func (d *Driver) Register(pid string, device *gpu.Device, engine perfmodel.EngineKind, weightBytes int64) error {
	return d.RegisterSharded(pid, []*gpu.Device{device}, engine, weightBytes)
}

// RegisterSharded adds a tensor-parallel CUDA process spanning the given
// devices; checkpoint and restore cover every shard.
func (d *Driver) RegisterSharded(pid string, devices []*gpu.Device, engine perfmodel.EngineKind, weightBytes int64) error {
	if len(devices) == 0 {
		return fmt.Errorf("cudackpt: process %q needs at least one device", pid)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, dup := d.procs[pid]; dup {
		return fmt.Errorf("%w: %q", ErrAlreadyExists, pid)
	}
	d.procs[pid] = &proc{
		pid:         pid,
		devices:     devices,
		engine:      engine,
		weightBytes: weightBytes,
		state:       StateRunning,
	}
	return nil
}

// Unregister removes a process. A checkpointed process's host image is
// released.
func (d *Driver) Unregister(pid string) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	p, ok := d.procs[pid]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownProcess, pid)
	}
	if p.loc == LocDisk {
		d.diskUsed -= p.hostImage
	} else {
		d.hostUsed -= p.hostImage
	}
	delete(d.procs, pid)
	return nil
}

// State returns the current checkpoint state of pid.
func (d *Driver) State(pid string) (State, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	p, ok := d.procs[pid]
	if !ok {
		return 0, fmt.Errorf("%w: %q", ErrUnknownProcess, pid)
	}
	return p.state, nil
}

// ImageBytes returns the size of pid's host checkpoint image (zero unless
// checkpointed).
func (d *Driver) ImageBytes(pid string) (int64, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	p, ok := d.procs[pid]
	if !ok {
		return 0, fmt.Errorf("%w: %q", ErrUnknownProcess, pid)
	}
	return p.hostImage, nil
}

// HostUsed returns the total host memory consumed by checkpoint images.
func (d *Driver) HostUsed() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.hostUsed
}

// get fetches the proc or fails.
func (d *Driver) get(pid string) (*proc, error) {
	p, ok := d.procs[pid]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownProcess, pid)
	}
	return p, nil
}

// Lock quiesces a running process's CUDA activity (cuda-checkpoint
// --action lock). It must be in the Running state.
func (d *Driver) Lock(pid string) error {
	d.mu.Lock()
	p, err := d.get(pid)
	if err != nil {
		d.mu.Unlock()
		return err
	}
	if p.state != StateRunning {
		d.mu.Unlock()
		return fmt.Errorf("%w: lock from %v", ErrBadState, p.state)
	}
	if err := d.takeFaultLocked(chaos.SiteCkptLock); err != nil {
		d.mu.Unlock()
		return err
	}
	p.state = StateLocked
	d.recordLocked(pid, StateRunning, StateLocked)
	d.mu.Unlock()
	d.clock.Sleep(d.testbed.CkptLock)
	return nil
}

// Unlock resumes a locked process (cuda-checkpoint --action unlock).
func (d *Driver) Unlock(pid string) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	p, err := d.get(pid)
	if err != nil {
		return err
	}
	if p.state != StateLocked {
		return fmt.Errorf("%w: unlock from %v", ErrBadState, p.state)
	}
	if err := d.takeFaultLocked(chaos.SiteCkptUnlock); err != nil {
		return err
	}
	p.state = StateRunning
	d.recordLocked(pid, StateLocked, StateRunning)
	return nil
}

// Checkpoint copies a locked process's device state into a host image and
// frees its GPU memory (cuda-checkpoint --action checkpoint). Returns the
// image size.
func (d *Driver) Checkpoint(pid string) (int64, error) {
	d.mu.Lock()
	p, err := d.get(pid)
	if err != nil {
		d.mu.Unlock()
		return 0, err
	}
	if p.state != StateLocked {
		d.mu.Unlock()
		return 0, fmt.Errorf("%w: checkpoint from %v", ErrBadState, p.state)
	}
	if err := d.takeFaultLocked(chaos.SiteCkptCheckpoint); err != nil {
		d.mu.Unlock()
		return 0, err
	}
	pcie := d.pcieDelayLocked()
	shard := make([]int64, len(p.devices))
	var bytes int64
	for i, dev := range p.devices {
		shard[i] = dev.OwnerUsage(p.pid)
		bytes += shard[i]
	}
	var spillSleep time.Duration
	if d.hostCap > 0 && d.hostUsed+bytes > d.hostCap {
		if !d.spill {
			d.mu.Unlock()
			return 0, fmt.Errorf("%w: need %d, used %d of %d", ErrHostMemory, bytes, d.hostUsed, d.hostCap)
		}
		var ok bool
		spillSleep, ok = d.spillUntilLocked(bytes, pid)
		if !ok {
			d.mu.Unlock()
			return 0, fmt.Errorf("%w: need %d, used %d of %d and nothing left to spill",
				ErrHostMemory, bytes, d.hostUsed, d.hostCap)
		}
	}
	d.hostUsed += bytes
	d.mu.Unlock()
	d.clock.Sleep(spillSleep)

	// D2H copies outside the driver lock so distinct processes checkpoint
	// concurrently; shards transfer in parallel over their own PCIe
	// links, so the slowest (largest) shard dominates. Injected PCIe
	// congestion stretches the transfer.
	d.clock.Sleep(d.testbed.CheckpointSave(maxShard(shard)) - d.testbed.CkptLock + pcie)

	d.mu.Lock()
	defer d.mu.Unlock()
	for i, dev := range p.devices {
		if _, err := dev.FreeOwner(p.pid); err != nil && shard[i] > 0 {
			// Accounting drift between snapshot and free is a programming error.
			d.hostUsed -= bytes
			return 0, fmt.Errorf("cudackpt: freeing device state: %v", err)
		}
	}
	p.hostImage = bytes
	p.shardBytes = shard
	p.state = StateCheckpointed
	p.loc = LocRAM
	p.lastUsed = d.clock.Now()
	d.recordLocked(pid, StateLocked, StateCheckpointed)
	return bytes, nil
}

// Restore re-allocates a checkpointed process's device memory and copies
// its host image back (cuda-checkpoint --action restore). The process is
// left Locked; call Unlock to resume it. Fails with gpu.ErrOutOfMemory if
// the device cannot fit the image.
func (d *Driver) Restore(pid string) error {
	d.mu.Lock()
	p, err := d.get(pid)
	if err != nil {
		d.mu.Unlock()
		return err
	}
	if p.state != StateCheckpointed {
		d.mu.Unlock()
		return fmt.Errorf("%w: restore from %v", ErrBadState, p.state)
	}
	if err := d.takeFaultLocked(chaos.SiteCkptRestore); err != nil {
		d.mu.Unlock()
		return err
	}
	pcie := d.pcieDelayLocked()
	bytes := p.hostImage
	shard := p.shardBytes
	fromDisk := p.loc == LocDisk
	for i, dev := range p.devices {
		if err := dev.Alloc(p.pid, shard[i]); err != nil {
			for _, prev := range p.devices[:i] {
				prev.FreeOwner(p.pid)
			}
			d.mu.Unlock()
			return err
		}
	}
	d.mu.Unlock()

	// A disk-resident image must be read back before the device copy —
	// the slow path the host-memory snapshot avoids.
	if fromDisk {
		d.clock.Sleep(d.testbed.StorageReadTime(perfmodel.TierDisk, bytes))
	}
	// H2D copies and first-touch outside the lock; parallel shards mean
	// the largest one dominates. The engine-resume overhead is charged by
	// the caller (engine controller), not here.
	perShardWeights := p.weightBytes / int64(len(p.devices))
	dur := d.testbed.CheckpointRestore(maxShard(shard), perShardWeights, p.engine) -
		d.testbed.CkptLock - perfmodel.EngineResumeOverhead(p.engine)
	d.clock.Sleep(dur + pcie)

	d.mu.Lock()
	defer d.mu.Unlock()
	if fromDisk {
		d.diskUsed -= bytes
	} else {
		d.hostUsed -= bytes
	}
	p.hostImage = 0
	p.loc = LocRAM
	p.lastUsed = d.clock.Now()
	p.state = StateLocked
	d.recordLocked(pid, StateCheckpointed, StateLocked)
	return nil
}

// Suspend is the convenience sequence Lock + Checkpoint used by the engine
// controller's swap-out path. Returns the host image size.
func (d *Driver) Suspend(pid string) (int64, error) {
	if err := d.Lock(pid); err != nil {
		return 0, err
	}
	bytes, err := d.Checkpoint(pid)
	if err != nil {
		// Roll the lock back so the process is usable again. Unlock can
		// itself hit a transient injected fault; retry a few times so a
		// single chaos firing doesn't wedge the process in Locked.
		var uerr error
		for attempt := 0; attempt < 4; attempt++ {
			if uerr = d.Unlock(pid); uerr == nil {
				return 0, err
			}
		}
		return 0, errors.Join(err, uerr)
	}
	return bytes, nil
}

// maxShard returns the largest per-device byte count (zero for empty).
func maxShard(shard []int64) int64 {
	var m int64
	for _, b := range shard {
		if b > m {
			m = b
		}
	}
	return m
}

// Resume is the convenience sequence Restore + Unlock used by the engine
// controller's swap-in path.
func (d *Driver) Resume(pid string) error {
	if err := d.Restore(pid); err != nil {
		return err
	}
	return d.Unlock(pid)
}
