package cudackpt

import (
	"context"
	"testing"
	"time"

	"swapservellm/internal/ckptstore"
	"swapservellm/internal/gpu"
	"swapservellm/internal/metrics"
	"swapservellm/internal/perfmodel"
	"swapservellm/internal/simclock"
)

// newStoreDriver builds a spill-enabled driver with the content-addressed
// checkpoint store attached.
func newStoreDriver(t *testing.T, hostCap int64) (*Driver, *ckptstore.Store, *gpu.Device, *metrics.Registry, *simclock.Scaled) {
	t.Helper()
	clock := simclock.NewScaled(time.Date(2025, 11, 16, 0, 0, 0, 0, time.UTC), 5000)
	dev := gpu.NewDevice(0, perfmodel.GPUH100, 80*gib)
	reg := metrics.NewRegistry()
	d := NewDriver(clock, perfmodel.H100(), hostCap)
	d.EnableSpill()
	st := ckptstore.New(clock, perfmodel.H100(), ckptstore.WithRegistry(reg))
	d.AttachStore(st)
	return d, st, dev, reg, clock
}

// TestSpillKeepsSharedChunksResident is the regression test for the
// chunk-aware spill LRU: when the spiller demotes a victim whose weight
// chunks are deduplicated with a still-RAM-resident replica, those
// shared chunks must keep their host copies — only the victim's
// exclusive bytes go to disk, and the victim's later restore pays the
// disk read for the exclusive bytes alone.
func TestSpillKeepsSharedChunksResident(t *testing.T) {
	const weight = 28 * gib
	d, st, dev, reg, _ := newStoreDriver(t, 70*gib)

	// Two replicas of one model (shared 28 GiB weight region + 2 GiB of
	// pristine dynamic state — all content-shared), plus an unrelated
	// model that will trigger the spill.
	dev.Alloc("a", 30*gib)
	dev.Alloc("b", 30*gib)
	dev.Alloc("c", 20*gib)
	for _, pid := range []string{"a", "b"} {
		if err := d.Register(pid, dev, perfmodel.EngineVLLM, weight); err != nil {
			t.Fatal(err)
		}
		if err := d.SetContentKey(pid, "modelA"); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Register("c", dev, perfmodel.EngineVLLM, 18*gib); err != nil {
		t.Fatal(err)
	}
	if err := d.SetContentKey("c", "modelC"); err != nil {
		t.Fatal(err)
	}

	if _, err := d.Suspend(context.Background(), "a"); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Suspend(context.Background(), "b"); err != nil {
		t.Fatal(err)
	}
	// b's image deduplicated fully against a's.
	if got := reg.Counter("ckpt_dedup_bytes").Value(); got != float64(30*gib) {
		t.Fatalf("replica dedup bytes = %v, want %v", got, float64(30*gib))
	}

	// c's 20 GiB checkpoint exceeds the 70 GiB logical cap (30+30+20):
	// the spiller demotes the LRU image (a). The chunk-aware demotion
	// must keep the 30 GiB shared with RAM-resident b in host RAM and
	// write nothing to disk — a has no exclusive bytes at all.
	if _, err := d.Suspend(context.Background(), "c"); err != nil {
		t.Fatal(err)
	}
	if loc, _ := d.ImageLocation("a"); loc != LocDisk {
		t.Fatalf("a location = %v, want disk (logical ledger)", loc)
	}
	if got := st.MissingHostBytes("a"); got != 0 {
		t.Fatalf("a is missing %d host bytes after spill; shared chunks were evicted", got)
	}
	if got := reg.Counter("ckpt_demote_bytes").Value(); got != 0 {
		t.Fatalf("spill wrote %v bytes to disk for fully shared image", got)
	}

	// a's restore must fetch every byte from host RAM — no disk reads —
	// even though the logical ledger says the image lives on disk.
	if err := d.Resume(context.Background(), "a"); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("ckpt_fetch_bytes_local_disk").Value(); got != 0 {
		t.Fatalf("restore of spilled-but-shared image read %v bytes from disk", got)
	}
	if got := reg.Counter("ckpt_fetch_bytes_host_ram").Value(); got != float64(30*gib) {
		t.Fatalf("host RAM served %v bytes, want the whole image", got)
	}
	if err := st.SelfCheck(); err != nil {
		t.Fatal(err)
	}
}

// TestSpillWritesOnlyExclusiveBytes checks the complementary half: a
// victim with exclusive (dirty) chunks pays the disk write for those
// bytes only, and its restore reads back exactly them.
func TestSpillWritesOnlyExclusiveBytes(t *testing.T) {
	const weight = 28 * gib
	d, st, dev, reg, _ := newStoreDriver(t, 70*gib)
	dev.Alloc("a", 30*gib)
	dev.Alloc("b", 30*gib)
	dev.Alloc("c", 20*gib)
	for _, pid := range []string{"a", "b"} {
		d.Register(pid, dev, perfmodel.EngineVLLM, weight)
		d.SetContentKey(pid, "modelA")
	}
	d.Register("c", dev, perfmodel.EngineVLLM, 18*gib)
	d.SetContentKey("c", "modelC")

	// a has served traffic: its 2 GiB dynamic region is dirty and
	// cannot dedup against b's pristine copy.
	d.MarkDirty("a")
	if _, err := d.Suspend(context.Background(), "a"); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Suspend(context.Background(), "b"); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Suspend(context.Background(), "c"); err != nil {
		t.Fatal(err)
	}
	if loc, _ := d.ImageLocation("a"); loc != LocDisk {
		t.Fatalf("a location = %v, want disk", loc)
	}
	// Only the 2 GiB dirty region was a's alone.
	if got := reg.Counter("ckpt_demote_bytes").Value(); got != float64(2*gib) {
		t.Fatalf("demote wrote %v, want %v (exclusive bytes only)", got, float64(2*gib))
	}
	if got := st.MissingHostBytes("a"); got != 2*gib {
		t.Fatalf("a missing %d host bytes, want %d", got, 2*gib)
	}

	if err := d.Resume(context.Background(), "a"); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("ckpt_fetch_bytes_local_disk").Value(); got != float64(2*gib) {
		t.Fatalf("restore read %v from disk, want %v", got, float64(2*gib))
	}
	if err := st.SelfCheck(); err != nil {
		t.Fatal(err)
	}
}

// TestDeltaRecheckpointSkipsCleanChunks pins the delta-checkpoint fast
// path end to end at the driver level: re-checkpointing an idle model
// whose chunks are still cached is dramatically faster than the first
// checkpoint, and a dirtied model re-pays only its dynamic region.
func TestDeltaRecheckpointSkipsCleanChunks(t *testing.T) {
	d, st, dev, reg, clock := newStoreDriver(t, 0)
	dev.Alloc("a", 30*gib)
	if err := d.Register("a", dev, perfmodel.EngineVLLM, 28*gib); err != nil {
		t.Fatal(err)
	}
	d.SetContentKey("a", "modelA")

	t0 := clock.Now()
	if _, err := d.Suspend(context.Background(), "a"); err != nil {
		t.Fatal(err)
	}
	full := clock.Since(t0)
	if err := d.Resume(context.Background(), "a"); err != nil {
		t.Fatal(err)
	}

	// Idle re-checkpoint: nothing changed, every chunk still cached.
	t1 := clock.Now()
	if _, err := d.Suspend(context.Background(), "a"); err != nil {
		t.Fatal(err)
	}
	delta := clock.Since(t1)
	if delta*2 >= full {
		t.Fatalf("idle re-checkpoint %v not ≥2× faster than full %v", delta, full)
	}
	if got := reg.Counter("ckpt_new_bytes").Value(); got != float64(30*gib) {
		t.Fatalf("re-checkpoint stored new bytes: total %v, want %v", got, float64(30*gib))
	}
	if err := d.Resume(context.Background(), "a"); err != nil {
		t.Fatal(err)
	}

	// Dirty re-checkpoint: the 2 GiB dynamic region re-keys and must be
	// transferred; the 28 GiB weight region stays clean.
	d.MarkDirty("a")
	if _, err := d.Suspend(context.Background(), "a"); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("ckpt_new_bytes").Value(); got != float64(32*gib) {
		t.Fatalf("dirty re-checkpoint new bytes total %v, want %v", got, float64(32*gib))
	}
	if err := st.SelfCheck(); err != nil {
		t.Fatal(err)
	}
}
