package cudackpt

import "errors"

// The driver's error vocabulary. Every error returned by this package
// wraps exactly one of these sentinels (swaplint's errwrap analyzer
// enforces the wrapping), so callers branch with errors.Is rather than
// string matching:
//
//   - ErrUnknownProcess: the pid was never registered (or already
//     unregistered). Retrying cannot help; the caller holds a stale
//     handle.
//   - ErrBadState: the requested transition is illegal from the
//     process's current state (e.g. Checkpoint without Lock, Unregister
//     mid-transfer). The state machine was not touched.
//   - ErrHostMemory: the host-memory cap cannot fit the checkpoint
//     image and spilling is off (or exhausted). Retry after freeing
//     images, or enable spill.
//   - ErrAlreadyExists: Register/RegisterSharded for a pid that is
//     already registered.
//
// Chunked transfers additionally surface gpu.ErrOutOfMemory (device
// capacity), chaos.ErrInjected (injected faults), and
// context.Canceled / context.DeadlineExceeded (a mid-transfer abort at
// a chunk boundary) — all wrapped, all matchable with errors.Is.
var (
	ErrUnknownProcess = errors.New("cudackpt: unknown process")
	ErrBadState       = errors.New("cudackpt: invalid state transition")
	ErrHostMemory     = errors.New("cudackpt: host memory exhausted")
	ErrAlreadyExists  = errors.New("cudackpt: process already registered")
)
