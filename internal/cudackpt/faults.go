package cudackpt

import (
	"sort"
	"time"

	"swapservellm/internal/chaos"
)

// This file is the driver's chaos integration: the injectable fault
// points the deterministic schedule engine (internal/chaos) drives, and
// the introspection surface the invariant checker audits. Driver-level
// checkpoint/restore failures happen in production (ECC errors, device
// resets, OOM host mappings, congested PCIe links) and the simulation
// makes them reproducible: every transition consults the injector
// before mutating state, so an injected fault always leaves the process
// exactly where it was.

// SetChaos installs (or, with nil, removes) the fault injector. All
// driver operations consult it: Lock, Checkpoint, Restore, and Unlock
// fail with the injector's error before any state change, and
// checkpoint/restore transfers stretch by any chaos.SiteCkptPCIe delay.
func (d *Driver) SetChaos(in *chaos.Injector) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.chaosInj = in
}

// SetTrace installs (or removes) the transition audit log. Every
// successful state transition is recorded as a "ckpt" event, so the
// invariant checker can prove no process was double-checkpointed or
// double-restored across a whole chaos run.
func (d *Driver) SetTrace(t *chaos.Trace) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.trace = t
}

// takeFaultLocked consults the injector for op, returning the error to
// raise or nil. Caller holds d.mu; the injector has its own lock and
// never calls back into the driver.
func (d *Driver) takeFaultLocked(site chaos.Site) error {
	return d.chaosInj.At(site).Err
}

// pcieDelayLocked returns any injected PCIe latency for the next
// transfer. Caller holds d.mu; the sleep itself happens outside it.
func (d *Driver) pcieDelayLocked() time.Duration {
	return d.chaosInj.At(chaos.SiteCkptPCIe).Delay
}

// recordLocked appends a successful transition to the audit trace.
// Caller holds d.mu.
func (d *Driver) recordLocked(pid string, from, to State) {
	d.trace.Record("ckpt", pid, from.String(), to.String())
}

// transitionLocked is the sole mutator of a process's lifecycle state
// (statecheck-enforced): it moves p from -> to and records the edge in
// the audit trace. Caller holds d.mu and has validated the edge.
func (d *Driver) transitionLocked(p *proc, from, to State) {
	p.state = to
	d.recordLocked(p.pid, from, to)
}

// ProcInfo is one registered process's audit snapshot.
type ProcInfo struct {
	// PID is the registered process identifier (the container ID).
	PID string
	// State is the current checkpoint state.
	State State
	// ImageBytes is the host image size (zero unless checkpointed or
	// mid-transfer).
	ImageBytes int64
	// Loc is where the image resides when checkpointed.
	Loc ImageLocation
	// DeviceIDs are the GPU indices the process spans.
	DeviceIDs []int
	// Transferring reports a chunked checkpoint/restore in flight.
	Transferring bool
	// TransferGoal is the total bytes the in-flight transfer moves
	// (zero when not transferring). While transferring, DeviceBytes +
	// ImageBytes == TransferGoal at every chunk boundary.
	TransferGoal int64
	// DeviceBytes is the process's summed device allocation, captured
	// under the driver lock so it is consistent with ImageBytes even
	// while other transfers are in flight.
	DeviceBytes int64
}

// ProcInfos returns an audit snapshot of every registered process,
// sorted by PID — the invariant checker reconciles these against
// device-owner accounting and the host/disk usage totals.
func (d *Driver) ProcInfos() []ProcInfo {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.procInfosLocked()
}

func (d *Driver) procInfosLocked() []ProcInfo {
	out := make([]ProcInfo, 0, len(d.procs))
	for pid, p := range d.procs {
		info := ProcInfo{
			PID:          pid,
			State:        p.state,
			ImageBytes:   p.hostImage,
			Loc:          p.loc,
			Transferring: p.transferring,
			TransferGoal: p.transferGoal,
		}
		for _, dev := range p.devices {
			info.DeviceIDs = append(info.DeviceIDs, dev.ID())
			info.DeviceBytes += dev.OwnerUsage(pid)
		}
		out = append(out, info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].PID < out[j].PID })
	return out
}

// AuditSnapshot is a single consistent view of the driver's bookkeeping:
// every field is captured under one hold of the driver lock, so the
// invariant checker can reconcile processes against the usage totals
// even while chunked transfers are committing on other goroutines.
type AuditSnapshot struct {
	Procs       []ProcInfo
	HostUsed    int64
	HostPledged int64
	DiskUsed    int64
}

// Audit returns a consistent audit snapshot. All transfer mutations
// (device allocation, image bytes, host/disk totals, pledges) commit
// atomically under the driver lock, so the snapshot is exact at any
// chunk boundary.
func (d *Driver) Audit() AuditSnapshot {
	d.mu.Lock()
	defer d.mu.Unlock()
	return AuditSnapshot{
		Procs:       d.procInfosLocked(),
		HostUsed:    d.hostUsed,
		HostPledged: d.hostPledged,
		DiskUsed:    d.diskUsed,
	}
}

// HostPledged returns the host-memory bytes pledged (but not yet
// consumed) by in-flight chunked checkpoints. Zero at quiescence.
func (d *Driver) HostPledged() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.hostPledged
}
