package cudackpt

import (
	"errors"
	"fmt"
)

// FaultOp identifies a driver operation for fault injection.
type FaultOp string

// Injectable operations.
const (
	FaultLock       FaultOp = "lock"
	FaultCheckpoint FaultOp = "checkpoint"
	FaultRestore    FaultOp = "restore"
)

// ErrInjected marks failures produced by fault injection.
var ErrInjected = errors.New("cudackpt: injected fault")

// InjectFault makes the next n operations of the given kind fail with
// ErrInjected. Fault injection exercises the controller's rollback paths
// — driver-level checkpoint/restore failures happen in production (ECC
// errors, resets, OOM host mappings) and the simulation makes them
// reproducible.
func (d *Driver) InjectFault(op FaultOp, n int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.faults == nil {
		d.faults = make(map[FaultOp]int)
	}
	d.faults[op] = n
}

// takeFaultLocked consumes one injected fault for op, returning the error
// to raise or nil. Caller holds d.mu.
func (d *Driver) takeFaultLocked(op FaultOp) error {
	if d.faults == nil || d.faults[op] <= 0 {
		return nil
	}
	d.faults[op]--
	return fmt.Errorf("%w: %s", ErrInjected, op)
}
