package cudackpt

import (
	"context"
	"math"
	"time"

	"swapservellm/internal/chaos"
	"swapservellm/internal/obs"
	"swapservellm/internal/perfmodel"
	"swapservellm/internal/retry"
)

// This file is the chunked-transfer machinery behind Checkpoint and
// Restore. Instead of one monolithic sleep covering the whole image, a
// transfer moves DefaultChunkBytes-sized chunks that release (D2H) or
// claim (H2D) GPU capacity and host-image bytes incrementally, so a
// concurrent restore can begin as soon as the first victim chunks land
// — the pipelined full-duplex exchange the controller's SwapExchange
// fast path builds on. Accounting is committed per chunk under the
// driver lock, which keeps the conservation invariant
//
//	device bytes + image bytes == transfer goal
//
// exact at every chunk boundary, not just at quiescence.

// DefaultChunkBytes is the default transfer chunk granularity (1 GiB),
// matching the pinned-buffer sizes pipelined loaders use in practice.
const DefaultChunkBytes = int64(1) << 30

// chunkFaultRetries bounds the driver-internal retries of a chunk whose
// transfer hit an injected fault before the whole transfer aborts and
// rolls back.
const chunkFaultRetries = 3

// ChunkEvent describes one committed transfer chunk. Dir is DirD2H for
// checkpoint saves (GPU capacity was just released) and DirH2D for
// restores (capacity was just claimed).
type ChunkEvent struct {
	PID   string
	Dir   perfmodel.Direction
	Done  int64 // cumulative bytes transferred, including this chunk
	Total int64 // transfer goal in bytes
}

// SetChunkBytes sets the transfer chunk granularity. n <= 0 disables
// chunking entirely: the whole image moves as one chunk, reproducing
// the pre-pipelining monolithic behavior.
func (d *Driver) SetChunkBytes(n int64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if n <= 0 {
		n = math.MaxInt64
	}
	d.chunkBytes = n
}

// OnChunk registers fn to run after every committed transfer chunk.
// Hooks run outside the driver lock (they may call back into driver
// getters); the server uses one to nudge the task manager whenever a
// D2H chunk frees capacity, and the chaos soak uses one to audit
// accounting at every chunk boundary.
func (d *Driver) OnChunk(fn func(ChunkEvent)) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.chunkHooks = append(d.chunkHooks, fn)
}

// emitChunk invokes the registered chunk hooks without holding d.mu.
func (d *Driver) emitChunk(ev ChunkEvent) {
	d.mu.Lock()
	hooks := d.chunkHooks
	d.mu.Unlock()
	for _, fn := range hooks {
		fn(ev)
	}
}

// linksLocked returns (creating on demand) the PCIe links of p's
// devices. Caller holds d.mu.
func (d *Driver) linksLocked(p *proc) []*perfmodel.PCIeLink {
	out := make([]*perfmodel.PCIeLink, len(p.devices))
	for i, dev := range p.devices {
		l, ok := d.links[dev.ID()]
		if !ok {
			l = &perfmodel.PCIeLink{}
			d.links[dev.ID()] = l
		}
		out[i] = l
	}
	return out
}

// chunkShare returns the slice of the calibrated full-transfer duration
// covering bytes [from, to) of a bytes-sized image. Shares are computed
// from cumulative offsets so they telescope: an uncontended chunked
// transfer sleeps exactly as long as the old monolithic one.
func chunkShare(total time.Duration, from, to, bytes int64) time.Duration {
	if bytes <= 0 {
		return 0
	}
	f := float64(total)
	return time.Duration(f*float64(to)/float64(bytes)) - time.Duration(f*float64(from)/float64(bytes))
}

// sleepContended charges dur for one chunk, stretched by PCIe
// contention: the chunk registers on every link it crosses and the
// highest concurrent same-direction stream count (sampled at chunk
// start) multiplies the transfer time. Opposite-direction streams never
// contend — PCIe is full duplex, which is what makes the pipelined
// victim-out/target-in exchange profitable.
func (d *Driver) sleepContended(links []*perfmodel.PCIeLink, dir perfmodel.Direction, dur time.Duration) {
	factor := 1
	for _, l := range links {
		if f := l.Begin(dir); f > factor {
			factor = f
		}
	}
	d.clock.Sleep(dur * time.Duration(factor))
	for _, l := range links {
		l.End(dir)
	}
}

// chunkFault consults the per-chunk fault site, retrying a bounded
// number of times. A failed attempt burned its transfer time before the
// fault surfaced, so each retry recharges the chunk's share. Every
// injected firing is annotated onto ctx's active span so the trace
// shows the retries, not just the final abort. Returns the last fault
// when retries are exhausted — the caller aborts the transfer and rolls
// back.
func (d *Driver) chunkFault(ctx context.Context, links []*perfmodel.PCIeLink, dir perfmodel.Direction, share time.Duration) error {
	for attempt := 0; ; attempt++ {
		d.mu.Lock()
		err := d.takeFaultLocked(chaos.SiteCkptChunk)
		d.mu.Unlock()
		if err == nil {
			return nil
		}
		obs.AnnotateFault(ctx, string(chaos.SiteCkptChunk), err)
		if attempt+1 >= chunkFaultRetries {
			return err
		}
		d.sleepContended(links, dir, share)
	}
}

// drainDevices shrinks p's device allocations by c bytes in device
// order (the image is a concatenation of the per-device shards), keeping
// rem in lockstep with the actual allocations. Caller holds d.mu.
func drainDevices(p *proc, rem []int64, c int64) {
	for i, dev := range p.devices {
		if c == 0 {
			break
		}
		take := min(rem[i], c)
		if take == 0 {
			continue
		}
		rem[i] -= take
		c -= take
		dev.Resize(p.pid, rem[i])
	}
}

// claimChunk grows p's device allocations by c bytes in device order
// toward the shard targets, keeping alloced in lockstep. On OOM the
// partial growth from this call is undone before returning the error.
// Caller holds d.mu.
func claimChunk(p *proc, shard, alloced []int64, c int64) error {
	type step struct {
		i        int
		newBytes int64
	}
	var steps []step
	need := c
	for i := range shard {
		if need == 0 {
			break
		}
		room := shard[i] - alloced[i]
		take := min(room, need)
		if take > 0 {
			steps = append(steps, step{i, alloced[i] + take})
			need -= take
		}
	}
	for k, s := range steps {
		if err := p.devices[s.i].Resize(p.pid, s.newBytes); err != nil {
			for _, u := range steps[:k] {
				p.devices[u.i].Resize(p.pid, alloced[u.i])
			}
			return err
		}
	}
	for _, s := range steps {
		alloced[s.i] = s.newBytes
	}
	return nil
}

// rollbackCheckpoint attempts to undo a mid-pipeline checkpoint abort:
// the bytes already drained from the devices are re-claimed, the
// partial host image is discarded, and the pledge is returned, leaving
// the process Locked with its device state intact. Returns false when
// the freed capacity has already been claimed by a concurrent workload
// (a pipelined restore moving in) — the caller must roll forward and
// finish the checkpoint instead, since the device memory can no longer
// be given back.
func (d *Driver) rollbackCheckpoint(p *proc, shard, rem []int64, done, bytes int64) bool {
	regrow := func() error {
		d.mu.Lock()
		defer d.mu.Unlock()
		grown := make([]int, 0, len(rem))
		for i, dev := range p.devices {
			if rem[i] == shard[i] {
				continue
			}
			if err := dev.Resize(p.pid, shard[i]); err != nil {
				for _, j := range grown {
					p.devices[j].Resize(p.pid, rem[j])
				}
				return err
			}
			grown = append(grown, i)
		}
		for _, j := range grown {
			rem[j] = shard[j]
		}
		d.hostUsed -= done
		d.hostPledged -= bytes - done
		p.hostImage = 0
		p.transferring = false
		p.transferGoal = 0
		return nil
	}
	return retry.Transient(regrow) == nil
}

// rollbackRestore undoes a mid-pipeline restore abort: the device bytes
// claimed so far are released and the transferred chunks are returned
// to the host (or disk) image, leaving the process Checkpointed with
// its full image. Unlike the checkpoint direction this always succeeds
// — shrinking allocations cannot fail. Re-adding the image may
// transiently exceed the host cap if another checkpoint moved into the
// freed host memory meanwhile; the image pages were never physically
// released, so the cap is treated as soft here.
func (d *Driver) rollbackRestore(p *proc, done int64, fromDisk bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, dev := range p.devices {
		dev.Resize(p.pid, 0)
	}
	if fromDisk {
		d.diskUsed += done
	} else {
		d.hostUsed += done
	}
	p.hostImage += done
	p.transferring = false
	p.transferGoal = 0
}
