package cudackpt

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"swapservellm/internal/gpu"
	"swapservellm/internal/perfmodel"
	"swapservellm/internal/simclock"
)

const gib = int64(1) << 30

func newDriver(t *testing.T, hostCap int64) (*Driver, *gpu.Device, *simclock.Scaled) {
	t.Helper()
	clock := simclock.NewScaled(time.Date(2025, 11, 16, 0, 0, 0, 0, time.UTC), simclock.DefaultScale)
	dev := gpu.NewDevice(0, perfmodel.GPUH100, 80*gib)
	return NewDriver(clock, perfmodel.H100(), hostCap), dev, clock
}

func TestStateString(t *testing.T) {
	if StateRunning.String() != "running" || StateLocked.String() != "locked" || StateCheckpointed.String() != "checkpointed" {
		t.Fatal("state strings wrong")
	}
	if State(42).String() != "state(42)" {
		t.Fatal("unknown state string wrong")
	}
}

func TestRegisterDuplicate(t *testing.T) {
	d, dev, _ := newDriver(t, 0)
	if err := d.Register("p1", dev, perfmodel.EngineVLLM, gib); err != nil {
		t.Fatal(err)
	}
	if err := d.Register("p1", dev, perfmodel.EngineVLLM, gib); !errors.Is(err, ErrAlreadyExists) {
		t.Fatalf("expected ErrAlreadyExists, got %v", err)
	}
}

func TestUnknownProcess(t *testing.T) {
	d, _, _ := newDriver(t, 0)
	if err := d.Lock(context.Background(), "ghost"); !errors.Is(err, ErrUnknownProcess) {
		t.Fatalf("Lock: %v", err)
	}
	if _, err := d.State("ghost"); !errors.Is(err, ErrUnknownProcess) {
		t.Fatalf("State: %v", err)
	}
	if err := d.Unregister("ghost"); !errors.Is(err, ErrUnknownProcess) {
		t.Fatalf("Unregister: %v", err)
	}
	if _, err := d.ImageBytes("ghost"); !errors.Is(err, ErrUnknownProcess) {
		t.Fatalf("ImageBytes: %v", err)
	}
}

func TestCheckpointRestoreCycle(t *testing.T) {
	d, dev, _ := newDriver(t, 0)
	if err := dev.Alloc("p1", 30*gib); err != nil {
		t.Fatal(err)
	}
	if err := d.Register("p1", dev, perfmodel.EngineOllama, 10*gib); err != nil {
		t.Fatal(err)
	}

	// Suspend: GPU memory moves to a host image.
	img, err := d.Suspend(context.Background(), "p1")
	if err != nil {
		t.Fatalf("Suspend: %v", err)
	}
	if img != 30*gib {
		t.Fatalf("image = %d, want %d", img, 30*gib)
	}
	if dev.Used() != 0 {
		t.Fatalf("device still holds %d bytes after checkpoint", dev.Used())
	}
	if d.HostUsed() != 30*gib {
		t.Fatalf("host used = %d", d.HostUsed())
	}
	if s, _ := d.State("p1"); s != StateCheckpointed {
		t.Fatalf("state = %v", s)
	}

	// Resume: host image moves back to GPU.
	if err := d.Resume(context.Background(), "p1"); err != nil {
		t.Fatalf("Resume: %v", err)
	}
	if dev.OwnerUsage("p1") != 30*gib {
		t.Fatalf("device usage after restore = %d", dev.OwnerUsage("p1"))
	}
	if d.HostUsed() != 0 {
		t.Fatalf("host used after restore = %d", d.HostUsed())
	}
	if s, _ := d.State("p1"); s != StateRunning {
		t.Fatalf("state = %v", s)
	}
}

func TestInvalidTransitions(t *testing.T) {
	d, dev, _ := newDriver(t, 0)
	dev.Alloc("p", gib)
	d.Register("p", dev, perfmodel.EngineVLLM, gib)

	// Running: checkpoint, restore, and unlock are invalid.
	if _, err := d.Checkpoint(context.Background(), "p"); !errors.Is(err, ErrBadState) {
		t.Fatalf("Checkpoint from running: %v", err)
	}
	if err := d.Restore(context.Background(), "p"); !errors.Is(err, ErrBadState) {
		t.Fatalf("Restore from running: %v", err)
	}
	if err := d.Unlock(context.Background(), "p"); !errors.Is(err, ErrBadState) {
		t.Fatalf("Unlock from running: %v", err)
	}

	// Locked: lock again is invalid.
	d.Lock(context.Background(), "p")
	if err := d.Lock(context.Background(), "p"); !errors.Is(err, ErrBadState) {
		t.Fatalf("double Lock: %v", err)
	}
	// Checkpointed: lock and checkpoint are invalid.
	d.Checkpoint(context.Background(), "p")
	if err := d.Lock(context.Background(), "p"); !errors.Is(err, ErrBadState) {
		t.Fatalf("Lock from checkpointed: %v", err)
	}
	if _, err := d.Checkpoint(context.Background(), "p"); !errors.Is(err, ErrBadState) {
		t.Fatalf("double Checkpoint: %v", err)
	}
}

func TestRestoreOOM(t *testing.T) {
	d, dev, _ := newDriver(t, 0)
	dev.Alloc("p1", 50*gib)
	d.Register("p1", dev, perfmodel.EngineVLLM, gib)
	if _, err := d.Suspend(context.Background(), "p1"); err != nil {
		t.Fatal(err)
	}
	// Another tenant fills the GPU.
	if err := dev.Alloc("p2", 60*gib); err != nil {
		t.Fatal(err)
	}
	err := d.Restore(context.Background(), "p1")
	if !errors.Is(err, gpu.ErrOutOfMemory) {
		t.Fatalf("expected OOM on restore, got %v", err)
	}
	// Failed restore keeps the image and state.
	if s, _ := d.State("p1"); s != StateCheckpointed {
		t.Fatalf("state after failed restore = %v", s)
	}
	if img, _ := d.ImageBytes("p1"); img != 50*gib {
		t.Fatalf("image lost after failed restore: %d", img)
	}
	// After the tenant leaves, restore succeeds.
	dev.FreeOwner("p2")
	if err := d.Resume(context.Background(), "p1"); err != nil {
		t.Fatalf("Resume after space freed: %v", err)
	}
}

func TestHostMemoryCap(t *testing.T) {
	d, dev, _ := newDriver(t, 40*gib)
	dev.Alloc("p1", 30*gib)
	dev.Alloc("p2", 20*gib)
	d.Register("p1", dev, perfmodel.EngineVLLM, gib)
	d.Register("p2", dev, perfmodel.EngineVLLM, gib)
	if _, err := d.Suspend(context.Background(), "p1"); err != nil {
		t.Fatal(err)
	}
	_, err := d.Suspend(context.Background(), "p2")
	if !errors.Is(err, ErrHostMemory) {
		t.Fatalf("expected ErrHostMemory, got %v", err)
	}
	// Failed suspend must roll back to running so the engine keeps serving.
	if s, _ := d.State("p2"); s != StateRunning {
		t.Fatalf("state after failed suspend = %v", s)
	}
	// And the device allocation must be intact.
	if dev.OwnerUsage("p2") != 20*gib {
		t.Fatalf("device usage lost: %d", dev.OwnerUsage("p2"))
	}
}

func TestUnregisterReleasesImage(t *testing.T) {
	d, dev, _ := newDriver(t, 0)
	dev.Alloc("p", 10*gib)
	d.Register("p", dev, perfmodel.EngineVLLM, gib)
	d.Suspend(context.Background(), "p")
	if d.HostUsed() != 10*gib {
		t.Fatalf("host used = %d", d.HostUsed())
	}
	d.Unregister("p")
	if d.HostUsed() != 0 {
		t.Fatalf("host used after unregister = %d", d.HostUsed())
	}
}

func TestSuspendTimingScalesWithSize(t *testing.T) {
	// A 60 GiB checkpoint must take longer (in simulated time) than a
	// 1 GiB one.
	d, dev, clock := newDriver(t, 0)
	dev.Alloc("small", gib)
	dev.Alloc("large", 60*gib)
	d.Register("small", dev, perfmodel.EngineVLLM, gib)
	d.Register("large", dev, perfmodel.EngineVLLM, gib)

	t0 := clock.Now()
	d.Suspend(context.Background(), "small")
	smallDur := clock.Since(t0)
	t1 := clock.Now()
	d.Suspend(context.Background(), "large")
	largeDur := clock.Since(t1)
	if largeDur <= smallDur {
		t.Fatalf("large suspend %v not slower than small %v", largeDur, smallDur)
	}
}

func TestConcurrentSuspendResume(t *testing.T) {
	d, dev, _ := newDriver(t, 0)
	const n = 8
	for i := 0; i < n; i++ {
		pid := fmt.Sprintf("p%d", i)
		if err := dev.Alloc(pid, 4*gib); err != nil {
			t.Fatal(err)
		}
		if err := d.Register(pid, dev, perfmodel.EngineOllama, gib); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	errs := make(chan error, 2*n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		pid := fmt.Sprintf("p%d", i)
		go func() {
			defer wg.Done()
			if _, err := d.Suspend(context.Background(), pid); err != nil {
				errs <- err
				return
			}
			if err := d.Resume(context.Background(), pid); err != nil {
				errs <- err
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Errorf("concurrent cycle: %v", err)
	}
	if dev.Used() != n*4*gib {
		t.Fatalf("device usage after cycles = %d, want %d", dev.Used(), n*4*gib)
	}
	if d.HostUsed() != 0 {
		t.Fatalf("host usage after cycles = %d", d.HostUsed())
	}
}

func TestZeroByteProcess(t *testing.T) {
	// A process with no device allocations checkpoints to an empty image.
	d, dev, _ := newDriver(t, 0)
	d.Register("idle", dev, perfmodel.EngineVLLM, 0)
	img, err := d.Suspend(context.Background(), "idle")
	if err != nil || img != 0 {
		t.Fatalf("Suspend idle = %d, %v", img, err)
	}
	if err := d.Resume(context.Background(), "idle"); err != nil {
		t.Fatalf("Resume idle: %v", err)
	}
}
