package cudackpt

import (
	"context"
	"errors"
	"testing"
	"time"

	"swapservellm/internal/gpu"
	"swapservellm/internal/perfmodel"
	"swapservellm/internal/simclock"
)

func newSpillDriver(t *testing.T, hostCap int64) (*Driver, *gpu.Device, *simclock.Scaled) {
	t.Helper()
	clock := simclock.NewScaled(time.Date(2025, 11, 16, 0, 0, 0, 0, time.UTC), 5000)
	dev := gpu.NewDevice(0, perfmodel.GPUH100, 80*gib)
	d := NewDriver(clock, perfmodel.H100(), hostCap)
	d.EnableSpill()
	return d, dev, clock
}

func TestSpillEvictsLRUImage(t *testing.T) {
	d, dev, _ := newSpillDriver(t, 40*gib)
	// Two processes whose images cannot both fit in 40 GiB of host RAM.
	dev.Alloc("old", 30*gib)
	dev.Alloc("new", 25*gib)
	d.Register("old", dev, perfmodel.EngineOllama, gib)
	d.Register("new", dev, perfmodel.EngineOllama, gib)

	if _, err := d.Suspend(context.Background(), "old"); err != nil {
		t.Fatal(err)
	}
	if loc, _ := d.ImageLocation("old"); loc != LocRAM {
		t.Fatalf("first image location = %v", loc)
	}
	// The second checkpoint must spill the first image to disk.
	if _, err := d.Suspend(context.Background(), "new"); err != nil {
		t.Fatalf("Suspend with spill: %v", err)
	}
	if loc, _ := d.ImageLocation("old"); loc != LocDisk {
		t.Fatalf("LRU image location = %v, want disk", loc)
	}
	if loc, _ := d.ImageLocation("new"); loc != LocRAM {
		t.Fatalf("new image location = %v, want ram", loc)
	}
	if d.HostUsed() != 25*gib || d.DiskUsed() != 30*gib {
		t.Fatalf("tier accounting: host=%d disk=%d", d.HostUsed(), d.DiskUsed())
	}
	if d.SpillCount() != 1 {
		t.Fatalf("spills = %d", d.SpillCount())
	}
}

func TestSpillRestoreFromDiskSlower(t *testing.T) {
	d, dev, clock := newSpillDriver(t, 40*gib)
	dev.Alloc("a", 30*gib)
	dev.Alloc("b", 30*gib)
	d.Register("a", dev, perfmodel.EngineOllama, gib)
	d.Register("b", dev, perfmodel.EngineOllama, gib)
	d.Suspend(context.Background(), "a")
	d.Suspend(context.Background(), "b") // spills a to disk

	t0 := clock.Now()
	if err := d.Resume(context.Background(), "a"); err != nil {
		t.Fatal(err)
	}
	diskRestore := clock.Since(t0)
	t1 := clock.Now()
	if err := d.Resume(context.Background(), "b"); err != nil {
		t.Fatal(err)
	}
	ramRestore := clock.Since(t1)
	if diskRestore <= ramRestore {
		t.Fatalf("disk restore %v not slower than RAM restore %v", diskRestore, ramRestore)
	}
	// Accounting drains both tiers.
	if d.HostUsed() != 0 || d.DiskUsed() != 0 {
		t.Fatalf("residual accounting: host=%d disk=%d", d.HostUsed(), d.DiskUsed())
	}
}

func TestSpillExhausted(t *testing.T) {
	// A single image larger than the cap cannot be satisfied even with
	// spilling (nothing else to evict).
	d, dev, _ := newSpillDriver(t, 20*gib)
	dev.Alloc("big", 30*gib)
	d.Register("big", dev, perfmodel.EngineOllama, gib)
	if _, err := d.Suspend(context.Background(), "big"); !errors.Is(err, ErrHostMemory) {
		t.Fatalf("expected ErrHostMemory, got %v", err)
	}
	// The rollback must leave the process running with its memory intact.
	if s, _ := d.State("big"); s != StateRunning {
		t.Fatalf("state after failed suspend = %v", s)
	}
	if dev.OwnerUsage("big") != 30*gib {
		t.Fatal("device allocation lost after failed suspend")
	}
}

func TestSpillLRUOrder(t *testing.T) {
	// Three images; the cap forces exactly the least recently used out.
	d, dev, _ := newSpillDriver(t, 50*gib)
	for _, pid := range []string{"p1", "p2", "p3"} {
		dev.Alloc(pid, 20*gib)
		d.Register(pid, dev, perfmodel.EngineOllama, gib)
	}
	d.Suspend(context.Background(), "p1") // oldest
	d.Suspend(context.Background(), "p2")
	// p3 needs 20 GiB; 40 used of 50 -> spill p1 only.
	if _, err := d.Suspend(context.Background(), "p3"); err != nil {
		t.Fatal(err)
	}
	loc1, _ := d.ImageLocation("p1")
	loc2, _ := d.ImageLocation("p2")
	loc3, _ := d.ImageLocation("p3")
	if loc1 != LocDisk || loc2 != LocRAM || loc3 != LocRAM {
		t.Fatalf("locations: p1=%v p2=%v p3=%v", loc1, loc2, loc3)
	}
}

func TestSpillUnregisterReleasesDisk(t *testing.T) {
	d, dev, _ := newSpillDriver(t, 40*gib)
	dev.Alloc("a", 30*gib)
	dev.Alloc("b", 30*gib)
	d.Register("a", dev, perfmodel.EngineOllama, gib)
	d.Register("b", dev, perfmodel.EngineOllama, gib)
	d.Suspend(context.Background(), "a")
	d.Suspend(context.Background(), "b")
	if err := d.Unregister("a"); err != nil { // disk-resident
		t.Fatal(err)
	}
	if d.DiskUsed() != 0 {
		t.Fatalf("disk bytes leaked: %d", d.DiskUsed())
	}
	if err := d.Unregister("b"); err != nil { // ram-resident
		t.Fatal(err)
	}
	if d.HostUsed() != 0 {
		t.Fatalf("host bytes leaked: %d", d.HostUsed())
	}
}

func TestDemotePromoteRoundTrip(t *testing.T) {
	d, dev, clock := newSpillDriver(t, 60*gib)
	dev.Alloc("a", 20*gib)
	d.Register("a", dev, perfmodel.EngineOllama, gib)
	if _, err := d.Suspend(context.Background(), "a"); err != nil {
		t.Fatal(err)
	}

	t0 := clock.Now()
	if err := d.Demote(context.Background(), "a"); err != nil {
		t.Fatal(err)
	}
	if clock.Since(t0) <= 0 {
		t.Error("demote charged no write time")
	}
	if loc, _ := d.ImageLocation("a"); loc != LocDisk {
		t.Fatalf("location after demote = %v", loc)
	}
	if d.HostUsed() != 0 || d.DiskUsed() != 20*gib {
		t.Fatalf("accounting after demote: host=%d disk=%d", d.HostUsed(), d.DiskUsed())
	}
	// Demoting a disk image is a no-op.
	if err := d.Demote(context.Background(), "a"); err != nil {
		t.Fatal(err)
	}

	if err := d.Promote(context.Background(), "a"); err != nil {
		t.Fatal(err)
	}
	if loc, _ := d.ImageLocation("a"); loc != LocRAM {
		t.Fatalf("location after promote = %v", loc)
	}
	if d.HostUsed() != 20*gib || d.DiskUsed() != 0 {
		t.Fatalf("accounting after promote: host=%d disk=%d", d.HostUsed(), d.DiskUsed())
	}

	// Inventory listing sees the single image.
	snaps := d.Snapshots()
	if len(snaps) != 1 || snaps[0].PID != "a" || snaps[0].Bytes != 20*gib || snaps[0].Loc != LocRAM {
		t.Fatalf("snapshots = %+v", snaps)
	}
}

func TestPromoteRespectsCap(t *testing.T) {
	d, dev, _ := newSpillDriver(t, 40*gib)
	dev.Alloc("a", 30*gib)
	dev.Alloc("b", 30*gib)
	d.Register("a", dev, perfmodel.EngineOllama, gib)
	d.Register("b", dev, perfmodel.EngineOllama, gib)
	d.Suspend(context.Background(), "a")
	d.Suspend(context.Background(), "b") // spills a to disk
	// RAM holds b (30 of 40 GiB); promoting a (30 GiB) cannot fit and must
	// not spill b to make room.
	if err := d.Promote(context.Background(), "a"); !errors.Is(err, ErrHostMemory) {
		t.Fatalf("promote over cap: %v", err)
	}
	if loc, _ := d.ImageLocation("b"); loc != LocRAM {
		t.Fatal("promote displaced another image")
	}
}

func TestDemoteBadState(t *testing.T) {
	d, dev, _ := newSpillDriver(t, 0)
	dev.Alloc("run", 5*gib)
	d.Register("run", dev, perfmodel.EngineOllama, gib)
	if err := d.Demote(context.Background(), "run"); !errors.Is(err, ErrBadState) {
		t.Fatalf("demote of running process: %v", err)
	}
	if err := d.Demote(context.Background(), "ghost"); !errors.Is(err, ErrUnknownProcess) {
		t.Fatalf("demote of unknown process: %v", err)
	}
}

func TestImageLocationString(t *testing.T) {
	if LocRAM.String() != "ram" || LocDisk.String() != "disk" {
		t.Fatal("location strings wrong")
	}
}

func TestImageLocationUnknown(t *testing.T) {
	d, _, _ := newSpillDriver(t, 0)
	if _, err := d.ImageLocation("ghost"); !errors.Is(err, ErrUnknownProcess) {
		t.Fatalf("unknown pid: %v", err)
	}
}
