package cudackpt

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"time"

	"swapservellm/internal/ckptstore"
	"swapservellm/internal/obs"
	"swapservellm/internal/perfmodel"
)

// ImageLocation identifies where a checkpoint image currently resides.
type ImageLocation int

// Image locations.
const (
	// LocRAM: the image is in host memory — the fast path measured in
	// Figures 5/6.
	LocRAM ImageLocation = iota
	// LocDisk: the image was spilled to disk under host-memory pressure;
	// restoring it first pays a disk read.
	LocDisk
)

// String returns the lowercase location name.
func (l ImageLocation) String() string {
	if l == LocDisk {
		return "disk"
	}
	return "ram"
}

// EnableSpill turns on disk spilling: when a checkpoint would exceed the
// host-memory cap, the least recently used resident image is written to
// disk instead of failing. This addresses the deployment limit the paper
// leaves open — a host with 221 GB of RAM cannot hold many 72 GB vLLM
// snapshots simultaneously.
func (d *Driver) EnableSpill() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.spill = true
}

// ImageLocation reports where pid's checkpoint image resides.
func (d *Driver) ImageLocation(pid string) (ImageLocation, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	p, ok := d.procs[pid]
	if !ok {
		return LocRAM, ErrUnknownProcess
	}
	return p.loc, nil
}

// DiskUsed returns the bytes of checkpoint images spilled to disk.
func (d *Driver) DiskUsed() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.diskUsed
}

// SpillCount returns how many images have been spilled to disk in total.
func (d *Driver) SpillCount() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.spills
}

// Demote moves a checkpointed, RAM-resident image to disk, paying the
// disk write at the storage tier's effective bandwidth. The cluster
// rebalancer uses this to free host memory on a hot node after its
// snapshot has been replicated elsewhere. ctx carries the active trace
// span; the write itself is not interruptible.
func (d *Driver) Demote(ctx context.Context, pid string) (err error) {
	_, span := obs.Start(ctx, "ckpt.demote", obs.String("pid", pid))
	defer func() { span.EndErr(err) }()
	d.mu.Lock()
	p, ok := d.procs[pid]
	if !ok {
		d.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrUnknownProcess, pid)
	}
	if p.state != StateCheckpointed || p.hostImage == 0 || p.transferring {
		d.mu.Unlock()
		return fmt.Errorf("%w: demote of %q in state %v", ErrBadState, pid, p.state)
	}
	if p.loc == LocDisk {
		d.mu.Unlock()
		return nil
	}
	bytes := p.hostImage
	d.hostUsed -= bytes
	d.diskUsed += bytes
	p.loc = LocDisk
	d.spills++
	var sleep time.Duration
	demoted := false
	if d.store != nil {
		// Chunk-aware demotion: only chunks no other RAM-resident image
		// references are written out; shared chunks keep their host copy.
		if _, wsleep, derr := d.store.Demote(ctx, pid); derr == nil {
			sleep = wsleep
			demoted = true
		}
	}
	d.mu.Unlock()
	if !demoted {
		sleep = d.testbed.StorageReadTime(perfmodel.TierDisk, bytes)
	}
	d.clock.Sleep(sleep)
	return nil
}

// Promote moves a checkpointed, disk-spilled image back into host RAM,
// paying the disk read. It fails with ErrHostMemory when the image no
// longer fits under the host cap — Promote never spills other images to
// make room.
func (d *Driver) Promote(ctx context.Context, pid string) (err error) {
	_, span := obs.Start(ctx, "ckpt.promote", obs.String("pid", pid))
	defer func() { span.EndErr(err) }()
	d.mu.Lock()
	p, ok := d.procs[pid]
	if !ok {
		d.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrUnknownProcess, pid)
	}
	if p.state != StateCheckpointed || p.hostImage == 0 || p.transferring {
		d.mu.Unlock()
		return fmt.Errorf("%w: promote of %q in state %v", ErrBadState, pid, p.state)
	}
	if p.loc == LocRAM {
		d.mu.Unlock()
		return nil
	}
	bytes := p.hostImage
	if d.hostCap > 0 && d.hostUsed+d.hostPledged+bytes > d.hostCap {
		d.mu.Unlock()
		return fmt.Errorf("%w: need %d, used %d of %d", ErrHostMemory, bytes, d.hostUsed, d.hostCap)
	}
	d.diskUsed -= bytes
	d.hostUsed += bytes
	p.loc = LocRAM
	st := d.store
	d.mu.Unlock()
	if st != nil {
		// Chunk-aware promotion: only the missing chunks move, fetched
		// from whichever source (local disk, peer RAM, peer disk) the
		// perfmodel ranks fastest; chunks another hot image already
		// keeps in RAM are deduplicated for free. The store sleeps for
		// the fetches itself.
		_, _, perr := st.Promote(ctx, pid)
		switch {
		case perr == nil:
			return nil
		case errors.Is(perr, ckptstore.ErrUnknownManifest):
			// A pre-store image with no manifest: whole-image read below.
		default:
			// The fetch failed on every source; the image stays on disk.
			d.mu.Lock()
			d.diskUsed += bytes
			d.hostUsed -= bytes
			p.loc = LocDisk
			d.mu.Unlock()
			return fmt.Errorf("cudackpt: promote of %q: %w", pid, perr)
		}
	}
	d.clock.Sleep(d.testbed.StorageReadTime(perfmodel.TierDisk, bytes))
	return nil
}

// SnapshotInfo describes one checkpointed image for inventory listings.
type SnapshotInfo struct {
	PID      string
	Bytes    int64
	Loc      ImageLocation
	LastUsed time.Time
}

// Snapshots lists every checkpointed image, sorted by PID.
func (d *Driver) Snapshots() []SnapshotInfo {
	d.mu.Lock()
	defer d.mu.Unlock()
	var out []SnapshotInfo
	for pid, p := range d.procs {
		if p.state != StateCheckpointed || p.hostImage == 0 || p.transferring {
			continue
		}
		out = append(out, SnapshotInfo{PID: pid, Bytes: p.hostImage, Loc: p.loc, LastUsed: p.lastUsed})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].PID < out[j].PID })
	return out
}

// spillUntilLocked evicts LRU RAM-resident images to disk until need
// bytes fit under the host cap, excluding exceptPid. Returns the total
// simulated write time the caller must sleep (outside the lock), and
// whether enough space was freed. Caller holds d.mu.
//
// With a store attached the spill is chunk-aware: demoting the victim's
// manifest writes only the chunks no other RAM-resident image (and no
// in-flight checkpoint) references — a deduped chunk shared with a
// resident model keeps its host copy, so that model's restore never
// pays a disk read for bytes the spill supposedly evicted. The driver's
// logical ledger still moves the whole image, preserving the host-cap
// and invariant-checker arithmetic.
func (d *Driver) spillUntilLocked(ctx context.Context, need int64, exceptPid string) (time.Duration, bool) {
	var sleep time.Duration
	for d.hostCap > 0 && d.hostUsed+d.hostPledged+need > d.hostCap {
		victim := d.lruResidentLocked(exceptPid)
		if victim == nil {
			return sleep, false
		}
		demoted := false
		if d.store != nil {
			if _, wsleep, err := d.store.Demote(ctx, victim.pid); err == nil {
				sleep += wsleep
				demoted = true
			}
		}
		if !demoted {
			// Writing the whole image out at the disk tier's effective
			// bandwidth (legacy path, or a pre-store image with no
			// manifest).
			sleep += d.testbed.StorageReadTime("disk", victim.hostImage)
		}
		d.hostUsed -= victim.hostImage
		d.diskUsed += victim.hostImage
		victim.loc = LocDisk
		d.spills++
	}
	return sleep, true
}

// lruResidentLocked returns the checkpointed, RAM-resident process with
// the oldest lastUsed stamp (nil if none). Caller holds d.mu.
func (d *Driver) lruResidentLocked(exceptPid string) *proc {
	var victim *proc
	for pid, p := range d.procs {
		if pid == exceptPid || p.state != StateCheckpointed || p.loc != LocRAM ||
			p.hostImage == 0 || p.transferring {
			continue
		}
		if victim == nil || p.lastUsed.Before(victim.lastUsed) {
			victim = p
		}
	}
	return victim
}
