package cudackpt

import (
	"context"
	"errors"
	"testing"

	"swapservellm/internal/perfmodel"
)

// Context cancellation tests: a ctx cancelled mid-transfer aborts at the
// next chunk boundary exactly like an injected chunk fault — the
// accounting rolls back, the state machine returns to where it started,
// and a retry with a fresh ctx succeeds.

func TestCheckpointCanceledBetweenChunks(t *testing.T) {
	d, dev, _ := newDriver(t, 0)
	if err := dev.Alloc("p", 6*gib); err != nil {
		t.Fatal(err)
	}
	if err := d.Register("p", dev, perfmodel.EngineOllama, gib); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var committed int
	d.OnChunk(func(ev ChunkEvent) {
		if ev.Dir == perfmodel.DirD2H {
			committed++
			if committed == 2 {
				cancel()
			}
		}
	})
	_, err := d.Suspend(ctx, "p")
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Suspend = %v, want context.Canceled", err)
	}
	if committed >= 6 {
		t.Fatalf("all %d chunks committed; cancellation never took effect", committed)
	}
	if st, _ := d.State("p"); st != StateRunning {
		t.Fatalf("state after cancelled checkpoint = %v, want running", st)
	}
	if got := dev.OwnerUsage("p"); got != 6*gib {
		t.Fatalf("device bytes after rollback = %d, want %d", got, 6*gib)
	}
	if d.HostUsed() != 0 || d.HostPledged() != 0 {
		t.Fatalf("host accounting leaked: used=%d pledged=%d", d.HostUsed(), d.HostPledged())
	}
	if img, _ := d.ImageBytes("p"); img != 0 {
		t.Fatalf("image after rollback = %d, want 0", img)
	}
	// The cancellation is not sticky: a fresh ctx suspends cleanly.
	if _, err := d.Suspend(context.Background(), "p"); err != nil {
		t.Fatalf("Suspend retry after cancel: %v", err)
	}
	if st, _ := d.State("p"); st != StateCheckpointed {
		t.Fatalf("state after retry = %v, want checkpointed", st)
	}
}

func TestRestoreCanceledBetweenChunks(t *testing.T) {
	d, dev, _ := newDriver(t, 0)
	if err := dev.Alloc("p", 6*gib); err != nil {
		t.Fatal(err)
	}
	if err := d.Register("p", dev, perfmodel.EngineOllama, gib); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Suspend(context.Background(), "p"); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var committed int
	d.OnChunk(func(ev ChunkEvent) {
		if ev.Dir == perfmodel.DirH2D {
			committed++
			if committed == 2 {
				cancel()
			}
		}
	})
	err := d.Resume(ctx, "p")
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Resume = %v, want context.Canceled", err)
	}
	if st, _ := d.State("p"); st != StateCheckpointed {
		t.Fatalf("state after cancelled restore = %v, want checkpointed", st)
	}
	if img, _ := d.ImageBytes("p"); img != 6*gib {
		t.Fatalf("image after rollback = %d, want %d", img, 6*gib)
	}
	if got := dev.OwnerUsage("p"); got != 0 {
		t.Fatalf("device bytes after rollback = %d, want 0", got)
	}
	if d.HostUsed() != 6*gib {
		t.Fatalf("host used after rollback = %d, want %d", d.HostUsed(), 6*gib)
	}
	// The image survives the abort and restores under a live ctx.
	if err := d.Resume(context.Background(), "p"); err != nil {
		t.Fatalf("Resume retry after cancel: %v", err)
	}
	if st, _ := d.State("p"); st != StateRunning {
		t.Fatalf("state after retry = %v, want running", st)
	}
}
