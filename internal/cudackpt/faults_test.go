package cudackpt

import (
	"context"
	"errors"
	"testing"
	"time"

	"swapservellm/internal/chaos"
	"swapservellm/internal/perfmodel"
)

func TestChaosFaultLeavesStateIntact(t *testing.T) {
	d, dev, _ := newDriver(t, 0)
	dev.Alloc("p", 10*gib)
	d.Register("p", dev, perfmodel.EngineVLLM, gib)

	// Lock fault: process stays Running, device allocation untouched.
	d.SetChaos(chaos.FailNext(chaos.SiteCkptLock, 1))
	if err := d.Lock(context.Background(), "p"); !errors.Is(err, chaos.ErrInjected) {
		t.Fatalf("Lock = %v, want injected", err)
	}
	if s, _ := d.State("p"); s != StateRunning {
		t.Fatalf("state after lock fault = %v", s)
	}

	// Checkpoint fault: stays Locked, no host usage charged.
	d.SetChaos(chaos.FailNext(chaos.SiteCkptCheckpoint, 1))
	if err := d.Lock(context.Background(), "p"); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Checkpoint(context.Background(), "p"); !errors.Is(err, chaos.ErrInjected) {
		t.Fatalf("Checkpoint = %v, want injected", err)
	}
	if s, _ := d.State("p"); s != StateLocked {
		t.Fatalf("state after checkpoint fault = %v", s)
	}
	if d.HostUsed() != 0 {
		t.Fatalf("host usage leaked: %d", d.HostUsed())
	}
	if dev.OwnerUsage("p") != 10*gib {
		t.Fatalf("device allocation lost: %d", dev.OwnerUsage("p"))
	}

	// Unlock fault: stays Locked; once the fault clears, unlock works.
	d.SetChaos(chaos.FailNext(chaos.SiteCkptUnlock, 1))
	if err := d.Unlock(context.Background(), "p"); !errors.Is(err, chaos.ErrInjected) {
		t.Fatalf("Unlock = %v, want injected", err)
	}
	if s, _ := d.State("p"); s != StateLocked {
		t.Fatalf("state after unlock fault = %v", s)
	}
	if err := d.Unlock(context.Background(), "p"); err != nil {
		t.Fatalf("Unlock after fault cleared: %v", err)
	}

	// Restore fault: image and Checkpointed state survive.
	if _, err := d.Suspend(context.Background(), "p"); err != nil {
		t.Fatal(err)
	}
	d.SetChaos(chaos.FailNext(chaos.SiteCkptRestore, 1))
	if err := d.Restore(context.Background(), "p"); !errors.Is(err, chaos.ErrInjected) {
		t.Fatalf("Restore = %v, want injected", err)
	}
	if s, _ := d.State("p"); s != StateCheckpointed {
		t.Fatalf("state after restore fault = %v", s)
	}
	if img, _ := d.ImageBytes("p"); img != 10*gib {
		t.Fatalf("image lost after restore fault: %d", img)
	}
	if err := d.Resume(context.Background(), "p"); err != nil {
		t.Fatalf("Resume after fault cleared: %v", err)
	}
}

// TestSuspendRetriesUnlockRollback: a one-shot unlock fault during the
// Suspend rollback must not wedge the process in Locked — the bounded
// retry clears it.
func TestSuspendRetriesUnlockRollback(t *testing.T) {
	d, dev, _ := newDriver(t, 0)
	dev.Alloc("p", 4*gib)
	d.Register("p", dev, perfmodel.EngineVLLM, gib)
	d.SetChaos(chaos.NewInjector(chaos.Plan{Seed: 1, Rules: []chaos.Rule{
		{Site: chaos.SiteCkptCheckpoint, P: 1, Times: 1},
		{Site: chaos.SiteCkptUnlock, P: 1, Times: 1},
	}}))
	if _, err := d.Suspend(context.Background(), "p"); !errors.Is(err, chaos.ErrInjected) {
		t.Fatalf("Suspend = %v, want injected", err)
	}
	if s, _ := d.State("p"); s != StateRunning {
		t.Fatalf("state after rolled-back suspend = %v", s)
	}
}

// TestPCIeDelayStretchesTransfers: an injected PCIe latency makes the
// same-size suspend take longer in simulated time.
func TestPCIeDelayStretchesTransfers(t *testing.T) {
	d, dev, clock := newDriver(t, 0)
	dev.Alloc("p", 8*gib)
	d.Register("p", dev, perfmodel.EngineVLLM, gib)

	t0 := clock.Now()
	if _, err := d.Suspend(context.Background(), "p"); err != nil {
		t.Fatal(err)
	}
	if err := d.Resume(context.Background(), "p"); err != nil {
		t.Fatal(err)
	}
	base := clock.Since(t0)

	const extra = 30 * time.Second
	d.SetChaos(chaos.NewInjector(chaos.Plan{Seed: 1, Rules: []chaos.Rule{
		{Site: chaos.SiteCkptPCIe, Delay: extra},
	}}))
	t1 := clock.Now()
	if _, err := d.Suspend(context.Background(), "p"); err != nil {
		t.Fatal(err)
	}
	if err := d.Resume(context.Background(), "p"); err != nil {
		t.Fatal(err)
	}
	// Tolerance absorbs the scaled clock's real-time measurement jitter.
	slow := clock.Since(t1)
	if slow < base+extra-time.Second {
		t.Fatalf("degraded cycle %v not slower than baseline %v by ~%v", slow, base, extra)
	}
}

// TestTraceRecordsTransitions: the audit trace sees every successful
// transition of a full cycle, in order, and nothing for faulted ops.
func TestTraceRecordsTransitions(t *testing.T) {
	d, dev, _ := newDriver(t, 0)
	dev.Alloc("p", gib)
	d.Register("p", dev, perfmodel.EngineVLLM, gib)
	tr := chaos.NewTrace()
	d.SetTrace(tr)

	d.SetChaos(chaos.FailNext(chaos.SiteCkptLock, 1))
	d.Lock(context.Background(), "p") // faulted: no event
	d.SetChaos(nil)
	if _, err := d.Suspend(context.Background(), "p"); err != nil {
		t.Fatal(err)
	}
	if err := d.Resume(context.Background(), "p"); err != nil {
		t.Fatal(err)
	}

	want := [][2]string{
		{"running", "locked"},
		{"locked", "checkpointed"},
		{"checkpointed", "locked"},
		{"locked", "running"},
	}
	evs := tr.Events()
	if len(evs) != len(want) {
		t.Fatalf("trace has %d events, want %d: %+v", len(evs), len(want), evs)
	}
	for i, ev := range evs {
		if ev.Kind != "ckpt" || ev.Subject != "p" || ev.From != want[i][0] || ev.To != want[i][1] {
			t.Fatalf("event %d = %+v, want %v->%v", i, ev, want[i][0], want[i][1])
		}
	}
}
