package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"time"
)

// traceEvent is one entry in the Chrome trace_event JSON array. Field
// names follow the trace-event format spec so Perfetto and
// chrome://tracing load the file directly.
type traceEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat"`
	Phase string         `json:"ph"`
	TS    int64          `json:"ts"`            // microseconds since trace origin
	Dur   *int64         `json:"dur,omitempty"` // microseconds, "X" events only
	PID   int            `json:"pid"`
	TID   int64          `json:"tid"`
	Scope string         `json:"s,omitempty"` // instant-event scope
	Args  map[string]any `json:"args,omitempty"`
}

// traceFile is the trace_event JSON envelope.
type traceFile struct {
	DisplayTimeUnit string       `json:"displayTimeUnit"`
	TraceEvents     []traceEvent `json:"traceEvents"`
}

// WriteTraceEvents writes the trace as Chrome/Perfetto trace_event JSON
// ("X" complete events per span, "i" instant events per span event).
// Timestamps are microseconds of simulated time since the trace origin.
// Each span renders on the track (tid) of its root span, so one
// request's or one swap's whole subtree nests in a single Perfetto
// lane. Spans still open at export time get their live duration and an
// in_progress arg.
func (t *Tracer) WriteTraceEvents(w io.Writer) error {
	if t == nil {
		return json.NewEncoder(w).Encode(traceFile{DisplayTimeUnit: "ms", TraceEvents: []traceEvent{}})
	}
	spans := canonicalSpans(t.Snapshot())
	t.mu.Lock()
	origin := t.origin
	t.mu.Unlock()
	now := t.clock.Now()

	// Resolve each span's root for track assignment.
	parent := make(map[int64]int64, len(spans))
	for _, s := range spans {
		parent[s.ID] = s.Parent
	}
	rootOf := func(id int64) int64 {
		for parent[id] != 0 {
			id = parent[id]
		}
		return id
	}

	events := make([]traceEvent, 0, len(spans)*2)
	for _, s := range spans {
		tid := rootOf(s.ID)
		end := s.End
		args := map[string]any{"span_id": s.ID}
		if s.Parent != 0 {
			args["parent"] = s.Parent
		}
		if !s.Ended {
			end = now
			args["in_progress"] = true
		}
		if s.Status != "" {
			args["status"] = s.Status
		}
		for _, a := range s.Attrs {
			args[a.Key] = a.Value
		}
		dur := micros(end.Sub(s.Start))
		if dur < 0 {
			dur = 0
		}
		events = append(events, traceEvent{
			Name:  s.Name,
			Cat:   "swap",
			Phase: "X",
			TS:    micros(s.Start.Sub(origin)),
			Dur:   &dur,
			PID:   1,
			TID:   tid,
			Args:  args,
		})
		for _, ev := range s.Events {
			eargs := map[string]any{"span_id": s.ID}
			for _, a := range ev.Attrs {
				eargs[a.Key] = a.Value
			}
			events = append(events, traceEvent{
				Name:  ev.Name,
				Cat:   "swap",
				Phase: "i",
				TS:    micros(ev.Time.Sub(origin)),
				PID:   1,
				TID:   tid,
				Scope: "t",
				Args:  eargs,
			})
		}
	}
	// Total order: simulated timestamp, then track, then span, then
	// phase/name. Canonical span IDs plus a total sort make the export a
	// pure function of the simulated execution — byte-identical across
	// runs regardless of how the goroutines interleaved in wall time.
	sort.SliceStable(events, func(i, j int) bool {
		a, b := events[i], events[j]
		if a.TS != b.TS {
			return a.TS < b.TS
		}
		if a.TID != b.TID {
			return a.TID < b.TID
		}
		sa, _ := a.Args["span_id"].(int64)
		sb, _ := b.Args["span_id"].(int64)
		if sa != sb {
			return sa < sb
		}
		if a.Phase != b.Phase {
			return a.Phase < b.Phase
		}
		return a.Name < b.Name
	})

	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(traceFile{DisplayTimeUnit: "ms", TraceEvents: events})
}

func micros(d time.Duration) int64 { return int64(d / time.Microsecond) }

// canonicalSpans renumbers span IDs in a wall-clock-independent order.
// The tracer allocates IDs in Start wall order, which races for
// concurrent spans (the pipelined exchange's ckpt.suspend and
// ckpt.restore start in whichever order the goroutines happened to run),
// so raw IDs differ run to run even when every simulated timestamp is
// identical. Here the span forest is re-keyed by a deterministic DFS —
// roots and siblings ordered by simulated start time, then name, then
// end time, then attributes — and IDs are assigned in visit order.
// Spans whose parent fell to the retention cap become roots. The result
// is in visit order with ID and Parent rewritten, making every export a
// pure function of the simulated execution.
func canonicalSpans(spans []SpanData) []SpanData {
	known := make(map[int64]bool, len(spans))
	for _, s := range spans {
		known[s.ID] = true
	}
	children := make(map[int64][]SpanData, len(spans))
	var roots []SpanData
	for _, s := range spans {
		if s.Parent != 0 && known[s.Parent] {
			children[s.Parent] = append(children[s.Parent], s)
		} else {
			s.Parent = 0
			roots = append(roots, s)
		}
	}
	attrKey := func(attrs []Attr) string {
		var b strings.Builder
		for _, a := range attrs {
			b.WriteString(a.Key)
			b.WriteByte('=')
			b.WriteString(a.Value)
			b.WriteByte(',')
		}
		return b.String()
	}
	sortSpans := func(list []SpanData) {
		sort.SliceStable(list, func(i, j int) bool {
			a, b := list[i], list[j]
			if !a.Start.Equal(b.Start) {
				return a.Start.Before(b.Start)
			}
			if a.Name != b.Name {
				return a.Name < b.Name
			}
			if !a.End.Equal(b.End) {
				return a.End.Before(b.End)
			}
			return attrKey(a.Attrs) < attrKey(b.Attrs)
		})
	}
	sortSpans(roots)
	for _, list := range children {
		sortSpans(list)
	}
	out := make([]SpanData, 0, len(spans))
	var next int64
	var visit func(s SpanData, parent int64)
	visit = func(s SpanData, parent int64) {
		next++
		id := next
		kids := children[s.ID]
		s.ID, s.Parent = id, parent
		out = append(out, s)
		for _, c := range kids {
			visit(c, id)
		}
	}
	for _, r := range roots {
		visit(r, 0)
	}
	return out
}

// ValidateTraceEvents checks that data is well-formed trace_event JSON
// as this package emits it: a traceEvents array whose entries carry a
// name, a known phase, non-negative timestamps, non-negative durations
// on "X" events, unique span_ids, and parent references that resolve.
// CI uses it to schema-validate benchmark trace artifacts.
func ValidateTraceEvents(data []byte) error {
	var f struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &f); err != nil {
		return fmt.Errorf("obs: trace is not valid JSON: %w", err)
	}
	if f.TraceEvents == nil {
		return fmt.Errorf("obs: trace has no traceEvents array")
	}
	ids := make(map[int64]bool)
	type parentRef struct {
		span   int64
		parent int64
	}
	var refs []parentRef
	for i, ev := range f.TraceEvents {
		name, _ := ev["name"].(string)
		if name == "" {
			return fmt.Errorf("obs: event %d missing name", i)
		}
		ph, _ := ev["ph"].(string)
		switch ph {
		case "X", "i", "M":
		default:
			return fmt.Errorf("obs: event %d (%s) has unknown phase %q", i, name, ph)
		}
		ts, ok := ev["ts"].(float64)
		if !ok || ts < 0 {
			return fmt.Errorf("obs: event %d (%s) has invalid ts", i, name)
		}
		args, _ := ev["args"].(map[string]any)
		if ph == "X" {
			dur, ok := ev["dur"].(float64)
			if !ok || dur < 0 {
				return fmt.Errorf("obs: span event %d (%s) has invalid dur", i, name)
			}
			id, ok := args["span_id"].(float64)
			if !ok {
				return fmt.Errorf("obs: span event %d (%s) missing span_id", i, name)
			}
			if ids[int64(id)] {
				return fmt.Errorf("obs: duplicate span_id %d", int64(id))
			}
			ids[int64(id)] = true
			if p, ok := args["parent"].(float64); ok {
				refs = append(refs, parentRef{span: int64(id), parent: int64(p)})
			}
		}
	}
	for _, r := range refs {
		if !ids[r.parent] {
			return fmt.Errorf("obs: span %d references unknown parent %d", r.span, r.parent)
		}
	}
	return nil
}

// WriteTree writes the trace as a deterministic indented span tree:
// names, attributes, events, and failure status — no timestamps, IDs,
// or durations — with children in canonical order (simulated start time,
// then name). Two runs of the same seed and config produce
// byte-identical output, which is what the golden-trace test pins.
func (t *Tracer) WriteTree(w io.Writer) error {
	spans := canonicalSpans(t.Snapshot())
	children := make(map[int64][]SpanData)
	var roots []SpanData
	for _, s := range spans {
		if s.Parent == 0 {
			roots = append(roots, s)
		} else {
			children[s.Parent] = append(children[s.Parent], s)
		}
	}
	var write func(s SpanData, depth int) error
	write = func(s SpanData, depth int) error {
		if err := writeTreeLine(w, depth, "- "+s.Name, s.Attrs, s.Status); err != nil {
			return err
		}
		for _, ev := range s.Events {
			if err := writeTreeLine(w, depth+1, "* "+ev.Name, ev.Attrs, ""); err != nil {
				return err
			}
		}
		for _, c := range children[s.ID] {
			if err := write(c, depth+1); err != nil {
				return err
			}
		}
		return nil
	}
	for _, r := range roots {
		if err := write(r, 0); err != nil {
			return err
		}
	}
	return nil
}

// writeTreeLine emits one "  - name k=v k=v [!status]" line.
func writeTreeLine(w io.Writer, depth int, head string, attrs []Attr, status string) error {
	for i := 0; i < depth; i++ {
		if _, err := io.WriteString(w, "  "); err != nil {
			return err
		}
	}
	if _, err := io.WriteString(w, head); err != nil {
		return err
	}
	for _, a := range attrs {
		if _, err := fmt.Fprintf(w, " %s=%s", a.Key, a.Value); err != nil {
			return err
		}
	}
	if status != "" {
		if _, err := fmt.Fprintf(w, " !error=%q", status); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "\n")
	return err
}

// Handler serves the trace as trace_event JSON — the /debug/trace
// endpoint of swapserved and swapgateway. Safe on a nil tracer (serves
// an empty trace).
func (t *Tracer) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := t.WriteTraceEvents(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
}
