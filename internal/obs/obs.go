// Package obs is the swap-lifecycle tracing layer: a stdlib-only span
// tracer that attributes where each millisecond of a swap goes (lock,
// checkpoint, restore, unlock, queue wait, TTFT) the way ServerlessLLM
// and Torpor justify their designs — with a causal, per-request and
// per-swap timeline rather than aggregate counters.
//
// Spans carry parent links, attributes, and point events, and propagate
// through the system exclusively via context.Context: a component calls
// obs.Start(ctx, name) and gets back a child context carrying the new
// span. When no Tracer is installed on the context the returned span is
// nil, and every Span method is nil-safe, so instrumented code pays one
// context lookup and nothing else when tracing is off.
//
// Finished traces export two ways: Chrome/Perfetto trace_event JSON
// (WriteTraceEvents — open chrome://tracing or https://ui.perfetto.dev
// and drop the file in) and a deterministic span-tree rendering
// (WriteTree) that omits timestamps so golden tests can pin the causal
// structure of a fixed seed byte-for-byte. Span durations additionally
// feed per-phase latency histograms ("span_<name>") in the existing
// metrics registry when one is attached.
//
// Timestamps come from the injected simclock.Clock, so traces measure
// simulated time — the same timeline every latency histogram in the
// repository reports.
package obs

import (
	"fmt"
	"sync"
	"time"

	"swapservellm/internal/metrics"
	"swapservellm/internal/simclock"
)

// Attr is one key/value annotation on a span or event. Values are
// strings; use the typed constructors for other kinds.
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// String builds a string attribute.
func String(key, value string) Attr { return Attr{Key: key, Value: value} }

// Int64 builds an integer attribute.
func Int64(key string, value int64) Attr {
	return Attr{Key: key, Value: fmt.Sprintf("%d", value)}
}

// Int builds an integer attribute.
func Int(key string, value int) Attr { return Int64(key, int64(value)) }

// Bool builds a boolean attribute.
func Bool(key string, value bool) Attr {
	return Attr{Key: key, Value: fmt.Sprintf("%t", value)}
}

// Float64 builds a floating-point attribute (predicted rates,
// attainment ratios). %g keeps the rendering compact and stable.
func Float64(key string, value float64) Attr {
	return Attr{Key: key, Value: fmt.Sprintf("%g", value)}
}

// Event is a point-in-time annotation inside a span (a committed
// transfer chunk, an injected fault, a failover attempt).
type Event struct {
	Name  string    `json:"name"`
	Time  time.Time `json:"time"`
	Attrs []Attr    `json:"attrs,omitempty"`
}

// DefaultMaxSpans bounds how many spans a tracer retains; beyond it new
// Start calls return nil spans (counted in DroppedSpans) so a
// long-running daemon's /debug/trace endpoint cannot grow without
// bound.
const DefaultMaxSpans = 1 << 18

// Tracer collects spans on one simulated timeline. All methods are safe
// for concurrent use; a nil *Tracer is a valid no-op tracer.
type Tracer struct {
	clock simclock.Clock

	mu      sync.Mutex
	origin  time.Time
	reg     *metrics.Registry
	nextID  int64
	spans   []*Span
	max     int
	dropped int64
}

// NewTracer builds a tracer whose timestamps come from clock. The trace
// origin (ts=0 in the export) is the clock's current time.
func NewTracer(clock simclock.Clock) *Tracer {
	return &Tracer{clock: clock, origin: clock.Now(), max: DefaultMaxSpans}
}

// SetRegistry attaches a metrics registry: every ended span observes
// its duration in the histogram "span_<name>", giving per-phase latency
// distributions alongside the causal timeline.
func (t *Tracer) SetRegistry(reg *metrics.Registry) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.reg = reg
}

// SetMaxSpans overrides the span retention cap (n <= 0 restores the
// default).
func (t *Tracer) SetMaxSpans(n int) {
	if t == nil {
		return
	}
	if n <= 0 {
		n = DefaultMaxSpans
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.max = n
}

// DroppedSpans reports how many spans the retention cap discarded.
func (t *Tracer) DroppedSpans() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// SpanCount reports how many spans the tracer has retained.
func (t *Tracer) SpanCount() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.spans)
}

// start allocates and registers a span. parent is 0 for roots.
func (t *Tracer) start(parent int64, name string, attrs []Attr) *Span {
	if t == nil {
		return nil
	}
	now := t.clock.Now()
	t.mu.Lock()
	if len(t.spans) >= t.max {
		t.dropped++
		t.mu.Unlock()
		return nil
	}
	t.nextID++
	s := &Span{
		t:      t,
		id:     t.nextID,
		parent: parent,
		name:   name,
		start:  now,
		attrs:  append([]Attr(nil), attrs...),
	}
	t.spans = append(t.spans, s)
	t.mu.Unlock()
	return s
}

// Span is one timed operation in a trace. The zero value is unusable;
// spans come from Start. A nil *Span is valid: every method no-ops, so
// instrumentation does not need tracing-enabled checks.
type Span struct {
	t      *Tracer
	id     int64
	parent int64
	name   string
	start  time.Time

	mu     sync.Mutex
	end    time.Time
	ended  bool
	status string // non-empty marks the span failed
	attrs  []Attr
	events []Event
}

// ID returns the span's trace-unique identifier (0 for nil spans).
func (s *Span) ID() int64 {
	if s == nil {
		return 0
	}
	return s.id
}

// Name returns the span's operation name.
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// SetAttr adds (or appends, for repeated keys) an attribute.
func (s *Span) SetAttr(attrs ...Attr) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, attrs...)
	s.mu.Unlock()
}

// Event records a point-in-time annotation at the clock's current time.
func (s *Span) Event(name string, attrs ...Attr) {
	if s == nil {
		return
	}
	now := s.t.clock.Now()
	s.mu.Lock()
	s.events = append(s.events, Event{Name: name, Time: now, Attrs: append([]Attr(nil), attrs...)})
	s.mu.Unlock()
}

// Fail marks the span failed with err's message (nil err is ignored).
// The span stays open; pair with End (or use EndErr).
func (s *Span) Fail(err error) {
	if s == nil || err == nil {
		return
	}
	s.mu.Lock()
	s.status = err.Error()
	s.mu.Unlock()
}

// End closes the span at the clock's current time and, when the tracer
// has a registry attached, observes the duration in the per-phase
// histogram "span_<name>". Idempotent.
func (s *Span) End() {
	if s == nil {
		return
	}
	now := s.t.clock.Now()
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	s.end = now
	dur := s.end.Sub(s.start)
	name := s.name
	s.mu.Unlock()

	s.t.mu.Lock()
	reg := s.t.reg
	s.t.mu.Unlock()
	if reg != nil {
		reg.Histogram("span_" + name).Observe(dur)
	}
}

// EndErr is End plus Fail(err) when err is non-nil — the usual epilogue
// of a traced operation that returns an error.
func (s *Span) EndErr(err error) {
	s.Fail(err)
	s.End()
}

// Duration returns end-start for ended spans, and the live duration so
// far otherwise (zero for nil spans).
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	ended, end := s.ended, s.end
	s.mu.Unlock()
	if ended {
		return end.Sub(s.start)
	}
	return s.t.clock.Now().Sub(s.start)
}

// SpanData is an immutable snapshot of one span.
type SpanData struct {
	ID     int64     `json:"id"`
	Parent int64     `json:"parent,omitempty"`
	Name   string    `json:"name"`
	Start  time.Time `json:"start"`
	End    time.Time `json:"end"`
	Ended  bool      `json:"ended"`
	Status string    `json:"status,omitempty"`
	Attrs  []Attr    `json:"attrs,omitempty"`
	Events []Event   `json:"events,omitempty"`
}

// Snapshot captures every retained span (ended or not) in start order
// (ties broken by ID, which increases in Start order).
func (t *Tracer) Snapshot() []SpanData {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	spans := append([]*Span(nil), t.spans...)
	t.mu.Unlock()

	out := make([]SpanData, 0, len(spans))
	for _, s := range spans {
		s.mu.Lock()
		d := SpanData{
			ID:     s.id,
			Parent: s.parent,
			Name:   s.name,
			Start:  s.start,
			End:    s.end,
			Ended:  s.ended,
			Status: s.status,
			Attrs:  append([]Attr(nil), s.attrs...),
			Events: append([]Event(nil), s.events...),
		}
		s.mu.Unlock()
		out = append(out, d)
	}
	sortSpanData(out)
	return out
}

// sortSpanData orders snapshots by (start, id) so exports are stable
// regardless of internal retention order.
func sortSpanData(ds []SpanData) {
	for i := 1; i < len(ds); i++ {
		for j := i; j > 0 && spanLess(ds[j], ds[j-1]); j-- {
			ds[j], ds[j-1] = ds[j-1], ds[j]
		}
	}
}

func spanLess(a, b SpanData) bool {
	if !a.Start.Equal(b.Start) {
		return a.Start.Before(b.Start)
	}
	return a.ID < b.ID
}
