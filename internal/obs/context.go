package obs

import "context"

// context keys are unexported struct types so no other package can
// collide with them.
type tracerKey struct{}
type spanKey struct{}

// WithTracer returns a context carrying t; every Start under it records
// into t. A nil tracer returns ctx unchanged (tracing stays off).
func WithTracer(ctx context.Context, t *Tracer) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, tracerKey{}, t)
}

// TracerFrom returns the tracer carried by ctx, or nil.
func TracerFrom(ctx context.Context) *Tracer {
	t, _ := ctx.Value(tracerKey{}).(*Tracer)
	return t
}

// SpanFrom returns the innermost span carried by ctx, or nil.
func SpanFrom(ctx context.Context) *Span {
	s, _ := ctx.Value(spanKey{}).(*Span)
	return s
}

// Start begins a span named name as a child of ctx's current span (a
// root when there is none) and returns a context carrying the new span.
// With no tracer on ctx it returns (ctx, nil) — and since all Span
// methods are nil-safe the caller's instrumentation runs unchanged.
func Start(ctx context.Context, name string, attrs ...Attr) (context.Context, *Span) {
	t := TracerFrom(ctx)
	if t == nil {
		return ctx, nil
	}
	var parent int64
	if p := SpanFrom(ctx); p != nil {
		parent = p.id
	}
	s := t.start(parent, name, attrs)
	if s == nil { // retention cap reached
		return ctx, nil
	}
	return context.WithValue(ctx, spanKey{}, s), s
}

// AddEvent records a point event on ctx's current span (no-op without
// one). Convenience for call sites that have a ctx but no span handle.
func AddEvent(ctx context.Context, name string, attrs ...Attr) {
	SpanFrom(ctx).Event(name, attrs...)
}

// AnnotateFault records a chaos-injected fault as a "fault" event on
// ctx's current span, so a failing seed's timeline names the site and
// error that broke it. No-op when err is nil or no span is active.
func AnnotateFault(ctx context.Context, site string, err error) {
	if err == nil {
		return
	}
	SpanFrom(ctx).Event("fault", String("site", site), String("error", err.Error()))
}
