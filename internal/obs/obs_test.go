package obs

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"swapservellm/internal/metrics"
	"swapservellm/internal/simclock"
)

var testEpoch = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

func newTestTracer() (*Tracer, *simclock.Manual) {
	clk := simclock.NewManual(testEpoch)
	return NewTracer(clk), clk
}

func TestStartWithoutTracerIsNil(t *testing.T) {
	ctx, span := Start(context.Background(), "op")
	if span != nil {
		t.Fatalf("expected nil span without tracer, got %v", span)
	}
	// Every nil-span method must be a safe no-op.
	span.SetAttr(String("k", "v"))
	span.Event("e")
	span.Fail(errors.New("x"))
	span.End()
	span.EndErr(nil)
	if span.Duration() != 0 || span.ID() != 0 || span.Name() != "" {
		t.Fatal("nil span accessors must return zero values")
	}
	if SpanFrom(ctx) != nil || TracerFrom(ctx) != nil {
		t.Fatal("context must stay empty without a tracer")
	}
}

func TestSpanNesting(t *testing.T) {
	tr, clk := newTestTracer()
	ctx := WithTracer(context.Background(), tr)

	ctx1, root := Start(ctx, "request", String("model", "m"))
	clk.Advance(10 * time.Millisecond)
	ctx2, child := Start(ctx1, "swap.in")
	clk.Advance(5 * time.Millisecond)
	_, grand := Start(ctx2, "ckpt.restore")
	grand.Event("chunk", Int("done", 1))
	clk.Advance(5 * time.Millisecond)
	grand.End()
	child.End()
	clk.Advance(2 * time.Millisecond)
	root.End()

	spans := tr.Snapshot()
	if len(spans) != 3 {
		t.Fatalf("want 3 spans, got %d", len(spans))
	}
	if spans[0].Name != "request" || spans[0].Parent != 0 {
		t.Fatalf("root wrong: %+v", spans[0])
	}
	if spans[1].Name != "swap.in" || spans[1].Parent != spans[0].ID {
		t.Fatalf("child wrong: %+v", spans[1])
	}
	if spans[2].Name != "ckpt.restore" || spans[2].Parent != spans[1].ID {
		t.Fatalf("grandchild wrong: %+v", spans[2])
	}
	if len(spans[2].Events) != 1 || spans[2].Events[0].Name != "chunk" {
		t.Fatalf("grandchild events wrong: %+v", spans[2].Events)
	}
	if got := spans[0].End.Sub(spans[0].Start); got != 22*time.Millisecond {
		t.Fatalf("root duration = %v, want 22ms", got)
	}
	if got := spans[2].End.Sub(spans[2].Start); got != 5*time.Millisecond {
		t.Fatalf("grandchild duration = %v, want 5ms", got)
	}
}

func TestSpanEndIdempotentAndFail(t *testing.T) {
	tr, clk := newTestTracer()
	ctx := WithTracer(context.Background(), tr)
	_, s := Start(ctx, "op")
	clk.Advance(time.Millisecond)
	s.EndErr(errors.New("boom"))
	clk.Advance(time.Hour)
	s.End() // must not move the end time
	d := tr.Snapshot()[0]
	if !d.Ended || d.Status != "boom" {
		t.Fatalf("span not ended/failed: %+v", d)
	}
	if got := d.End.Sub(d.Start); got != time.Millisecond {
		t.Fatalf("duration moved on second End: %v", got)
	}
}

func TestConcurrentSpans(t *testing.T) {
	tr, _ := newTestTracer()
	ctx := WithTracer(context.Background(), tr)
	const workers = 16
	const perWorker = 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c, s := Start(ctx, fmt.Sprintf("worker-%d", w))
				s.SetAttr(Int("iter", i))
				_, child := Start(c, "inner")
				child.Event("tick")
				child.End()
				s.End()
			}
		}(w)
	}
	wg.Wait()
	if got := tr.SpanCount(); got != workers*perWorker*2 {
		t.Fatalf("span count = %d, want %d", got, workers*perWorker*2)
	}
	// Every inner span must parent to a worker span of its own goroutine.
	byID := make(map[int64]SpanData)
	for _, s := range tr.Snapshot() {
		byID[s.ID] = s
	}
	for _, s := range byID {
		if s.Name == "inner" {
			p, ok := byID[s.Parent]
			if !ok || !strings.HasPrefix(p.Name, "worker-") {
				t.Fatalf("inner span has bad parent: %+v", s)
			}
		}
	}
}

func TestRetentionCap(t *testing.T) {
	tr, _ := newTestTracer()
	tr.SetMaxSpans(2)
	ctx := WithTracer(context.Background(), tr)
	_, a := Start(ctx, "a")
	_, b := Start(ctx, "b")
	cctx, c := Start(ctx, "c")
	if c != nil {
		t.Fatal("span over cap must be nil")
	}
	if SpanFrom(cctx) != nil {
		t.Fatal("dropped span must not be installed on ctx")
	}
	a.End()
	b.End()
	if tr.DroppedSpans() != 1 || tr.SpanCount() != 2 {
		t.Fatalf("dropped=%d count=%d", tr.DroppedSpans(), tr.SpanCount())
	}
}

func TestHistogramObservation(t *testing.T) {
	tr, clk := newTestTracer()
	reg := metrics.NewRegistry()
	tr.SetRegistry(reg)
	ctx := WithTracer(context.Background(), tr)
	_, s := Start(ctx, "swap.out")
	clk.Advance(30 * time.Millisecond)
	s.End()
	h := reg.Histogram("span_swap.out")
	if h.Count() != 1 {
		t.Fatalf("histogram count = %d, want 1", h.Count())
	}
}

func TestWriteTraceEventsAndValidate(t *testing.T) {
	tr, clk := newTestTracer()
	ctx := WithTracer(context.Background(), tr)
	rctx, root := Start(ctx, "exchange", String("victim", "a"), String("target", "b"))
	clk.Advance(4 * time.Millisecond)
	_, child := Start(rctx, "ckpt.checkpoint")
	child.Event("chunk", Int64("done_bytes", 1<<30))
	clk.Advance(6 * time.Millisecond)
	child.End()
	root.End()
	_, open := Start(ctx, "in-flight")
	_ = open // intentionally left unended

	var buf bytes.Buffer
	if err := tr.WriteTraceEvents(&buf); err != nil {
		t.Fatal(err)
	}
	if err := ValidateTraceEvents(buf.Bytes()); err != nil {
		t.Fatalf("emitted trace failed validation: %v\n%s", err, buf.String())
	}
	out := buf.String()
	for _, want := range []string{`"exchange"`, `"ckpt.checkpoint"`, `"chunk"`, `"in_progress"`, `"victim"`} {
		if !strings.Contains(out, want) {
			t.Fatalf("trace missing %s:\n%s", want, out)
		}
	}

	if err := ValidateTraceEvents([]byte(`{"foo":1}`)); err == nil {
		t.Fatal("validation must reject traces without traceEvents")
	}
	if err := ValidateTraceEvents([]byte(`not json`)); err == nil {
		t.Fatal("validation must reject non-JSON")
	}
	if err := ValidateTraceEvents([]byte(`{"traceEvents":[{"name":"x","ph":"Q","ts":0}]}`)); err == nil {
		t.Fatal("validation must reject unknown phases")
	}
}

func TestWriteTreeDeterministic(t *testing.T) {
	build := func(advance time.Duration) string {
		tr, clk := newTestTracer()
		ctx := WithTracer(context.Background(), tr)
		rctx, root := Start(ctx, "exchange", String("victim", "a"))
		clk.Advance(advance)
		_, c1 := Start(rctx, "swap.out")
		c1.Event("fault", String("site", "ckpt_chunk"))
		c1.End()
		_, c2 := Start(rctx, "swap.in")
		c2.End()
		root.EndErr(errors.New("injected"))
		var buf bytes.Buffer
		if err := tr.WriteTree(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	// Different timings, identical structure → identical tree.
	a := build(time.Millisecond)
	b := build(time.Hour)
	if a != b {
		t.Fatalf("tree not timing-independent:\n%s\nvs\n%s", a, b)
	}
	// Both children start at the same simulated instant, so the canonical
	// order falls back to the span name: swap.in sorts before swap.out.
	want := "- exchange victim=a !error=\"injected\"\n" +
		"  - swap.in\n" +
		"  - swap.out\n" +
		"    * fault site=ckpt_chunk\n"
	if a != want {
		t.Fatalf("tree rendering changed:\n%q\nwant\n%q", a, want)
	}
}

func TestHandler(t *testing.T) {
	tr, _ := newTestTracer()
	ctx := WithTracer(context.Background(), tr)
	_, s := Start(ctx, "op")
	s.End()
	rec := httptest.NewRecorder()
	tr.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/trace", nil))
	if rec.Code != 200 {
		t.Fatalf("status %d", rec.Code)
	}
	if err := ValidateTraceEvents(rec.Body.Bytes()); err != nil {
		t.Fatal(err)
	}

	var nilTr *Tracer
	rec = httptest.NewRecorder()
	nilTr.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/trace", nil))
	if rec.Code != 200 {
		t.Fatalf("nil tracer handler status %d", rec.Code)
	}
	if err := ValidateTraceEvents(rec.Body.Bytes()); err != nil {
		t.Fatal(err)
	}
}

func TestAnnotateFault(t *testing.T) {
	tr, _ := newTestTracer()
	ctx := WithTracer(context.Background(), tr)
	sctx, s := Start(ctx, "op")
	AnnotateFault(sctx, "proxy", errors.New("injected fault"))
	AnnotateFault(sctx, "proxy", nil) // nil error: no event
	s.End()
	d := tr.Snapshot()[0]
	if len(d.Events) != 1 || d.Events[0].Name != "fault" {
		t.Fatalf("fault events wrong: %+v", d.Events)
	}
}
