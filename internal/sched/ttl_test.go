package sched

import (
	"testing"
	"time"
)

func TestFixedTTL(t *testing.T) {
	f := &FixedTTL{TTL: 100 * time.Second}
	now := monday
	if f.ShouldEvict("m", 99*time.Second, now) {
		t.Fatal("evicted below TTL")
	}
	if !f.ShouldEvict("m", 100*time.Second, now) {
		t.Fatal("kept at TTL")
	}
}

// TestAdaptiveTTLLearnsFromRefetch: an access shortly after an eviction
// (a premature reclaim) must lengthen the model's TTL; evictions that
// stay cold must decay it back down.
func TestAdaptiveTTLLearnsFromRefetch(t *testing.T) {
	a := NewAdaptiveTTL(100 * time.Second)
	now := monday

	if !a.ShouldEvict("m", 100*time.Second, now) {
		t.Fatal("base TTL not honoured")
	}
	a.NoteEvict("m", now)
	// The decayed post-eviction TTL (75s) doubles on the premature
	// refetch 50s later.
	a.NoteAccess("m", now.Add(50*time.Second))
	if got := a.TTLFor("m"); got != 150*time.Second {
		t.Fatalf("TTL after premature refetch = %s, want 150s", got)
	}
	if a.ShouldEvict("m", 120*time.Second, now.Add(time.Minute)) {
		t.Fatal("evicted below the lengthened TTL")
	}

	// An access far outside the refetch window teaches nothing.
	a.NoteEvict("m", now.Add(10*time.Minute))
	a.NoteAccess("m", now.Add(30*time.Minute))
	if got := a.TTLFor("m"); got >= 150*time.Second {
		t.Fatalf("TTL did not decay on a cold eviction: %s", got)
	}

	// Repeated premature refetches saturate at Max.
	for i := 0; i < 10; i++ {
		at := now.Add(time.Duration(i) * time.Hour)
		a.NoteEvict("m", at)
		a.NoteAccess("m", at.Add(time.Second))
	}
	if got := a.TTLFor("m"); got != a.Max {
		t.Fatalf("TTL cap = %s, want %s", got, a.Max)
	}
}

// TestAdaptiveTTLEvictionOrder: under the same idle time, the model
// with the colder history is evicted first — the policy orders
// evictions by learned stickiness.
func TestAdaptiveTTLEvictionOrder(t *testing.T) {
	a := NewAdaptiveTTL(100 * time.Second)
	now := monday
	// "hot" was reclaimed prematurely twice; "cold" was evicted twice
	// with no refetch.
	for i := 0; i < 2; i++ {
		at := now.Add(time.Duration(i) * time.Hour)
		a.NoteEvict("hot", at)
		a.NoteAccess("hot", at.Add(10*time.Second))
		a.NoteEvict("cold", at)
	}
	idle := 90 * time.Second
	if !a.ShouldEvict("cold", idle, now.Add(3*time.Hour)) {
		t.Fatal("cold model survived an idle window beyond its decayed TTL")
	}
	if a.ShouldEvict("hot", idle, now.Add(3*time.Hour)) {
		t.Fatal("hot model evicted despite its lengthened TTL")
	}
}

// TestPredictiveTTLOrder: with equal idle times the predictor-informed
// policy keeps the model whose next arrival is due before a cold
// swap-in would pay off, and reclaims the one with no forecast demand.
func TestPredictiveTTLOrder(t *testing.T) {
	pred := NewPredictor(10*time.Minute, 15*time.Minute)
	now := monday.Add(12 * time.Hour)
	// "busy": an arrival every 10s over the last five minutes.
	for i := 30; i > 0; i-- {
		pred.Observe("busy", now.Add(-time.Duration(i)*10*time.Second))
	}
	// "quiet": one arrival, hours ago.
	pred.Observe("quiet", now.Add(-6*time.Hour))

	p := NewPredictiveTTL(pred, func(string) time.Duration { return 5 * time.Second })
	idle := time.Minute
	if p.ShouldEvict("busy", idle, now) {
		t.Fatal("evicted a model with a 10s predicted gap and a 20s eviction bar")
	}
	if !p.ShouldEvict("quiet", idle, now) {
		t.Fatal("kept a model with no forecast demand")
	}
	// Floor and ceiling guards.
	if p.ShouldEvict("quiet", 10*time.Second, now) {
		t.Fatal("evicted below the idle floor")
	}
	if !p.ShouldEvict("busy", 2*time.Hour, now) {
		t.Fatal("ceiling did not force eviction")
	}
}
