package sched

import (
	"math"
	"sync"
	"time"
)

// Predictor forecasts per-model request rates from two signals: a
// sliding-window EWMA over recent inter-arrival gaps (tracks the level
// the fleet is serving right now) and a time-of-day histogram learned
// across days (anticipates the diurnal ramps the EWMA can only chase).
// The blend lets the pre-warmer act before a ramp and the TTL policies
// hold models warm through short troughs.
//
// All methods take explicit timestamps so decisions are a pure function
// of the observed trace — no wall clock, per swaplint's clockcheck.
type Predictor struct {
	window  time.Duration // EWMA window for the recent-rate signal
	bucket  time.Duration // time-of-day histogram bucket width
	buckets int           // buckets per day

	mu     sync.Mutex
	models map[string]*modelDemand
}

// modelDemand is the learned state for one model.
type modelDemand struct {
	last    time.Time // most recent arrival
	ewmaGap float64   // EWMA inter-arrival gap, seconds (0 = untrained)

	// Time-of-day histogram: per-bucket arrival counts folded across
	// days with an EWMA, so weekday ramps dominate and stale days decay.
	rate  []float64 // per-bucket folded daily count
	count []float64 // today's accumulating count
	day   []int     // absolute day index count[] belongs to
}

// histBlend weighs a finished day's bucket count against history when
// folding: high enough that two similar days converge quickly.
const histBlend = 0.5

// NewPredictor returns a predictor with the given recent-rate window
// and time-of-day bucket width (bucket must divide 24h).
func NewPredictor(window, bucket time.Duration) *Predictor {
	if window <= 0 {
		window = 10 * time.Minute
	}
	if bucket <= 0 || (24*time.Hour)%bucket != 0 {
		bucket = 15 * time.Minute
	}
	return &Predictor{
		window:  window,
		bucket:  bucket,
		buckets: int((24 * time.Hour) / bucket),
		models:  make(map[string]*modelDemand),
	}
}

// Observe records one request arrival for model at t. Call it for every
// offered request (admitted or shed): demand is what clients ask for,
// not what the fleet chose to serve.
func (p *Predictor) Observe(model string, t time.Time) {
	p.mu.Lock()
	defer p.mu.Unlock()
	md := p.demandLocked(model)

	if !md.last.IsZero() {
		gap := t.Sub(md.last).Seconds()
		if gap > 0 {
			if md.ewmaGap == 0 {
				md.ewmaGap = gap
			} else {
				// Window-relative smoothing: a gap spanning the whole
				// window replaces the estimate; shorter gaps blend in
				// with a floor of 1/4 so a dense burst converges within
				// a few arrivals rather than a few windows.
				alpha := gap / p.window.Seconds()
				if alpha > 1 {
					alpha = 1
				} else if alpha < 0.25 {
					alpha = 0.25
				}
				md.ewmaGap += alpha * (gap - md.ewmaGap)
			}
		}
	}
	md.last = t

	b := p.bucketIndex(t)
	p.foldLocked(md, b, dayIndex(t))
	md.count[b]++
}

// Rate returns the predicted request rate (per second) for model at
// time at, which may be in the future. The historical time-of-day rate
// anchors the forecast; the recent EWMA rate lifts it when current
// traffic runs hotter than history, decaying with forecast distance.
func (p *Predictor) Rate(model string, at time.Time) float64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	md, ok := p.models[model]
	if !ok {
		return 0
	}
	b := p.bucketIndex(at)
	p.foldLocked(md, b, dayIndex(at))

	hist := md.rate[b] / p.bucket.Seconds()
	var recent float64
	if md.ewmaGap > 0 && !md.last.IsZero() {
		recent = 1 / md.ewmaGap
		// Decay the recent signal with distance from the last arrival:
		// it says nothing about the far side of the horizon.
		if dt := at.Sub(md.last); dt > 0 {
			recent *= math.Exp(-dt.Seconds() / p.window.Seconds())
		}
	}
	if recent > hist {
		return recent
	}
	return hist
}

// ExpectedArrivals integrates the predicted rate over [from, to),
// bucket by bucket, returning the expected number of requests.
func (p *Predictor) ExpectedArrivals(model string, from, to time.Time) float64 {
	if !to.After(from) {
		return 0
	}
	var total float64
	for t := from; t.Before(to); {
		next := t.Truncate(p.bucket).Add(p.bucket)
		if next.After(to) {
			next = to
		}
		total += p.Rate(model, t) * next.Sub(t).Seconds()
		t = next
	}
	return total
}

// Trained reports whether the model's histogram has folded at least one
// whole day of history — i.e. the time-of-day signal is usable.
func (p *Predictor) Trained(model string) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	md, ok := p.models[model]
	if !ok {
		return false
	}
	for _, r := range md.rate {
		if r > 0 {
			return true
		}
	}
	return false
}

// demandLocked returns (creating if needed) the model's state.
func (p *Predictor) demandLocked(model string) *modelDemand {
	md, ok := p.models[model]
	if !ok {
		md = &modelDemand{
			rate:  make([]float64, p.buckets),
			count: make([]float64, p.buckets),
			day:   make([]int, p.buckets),
		}
		for i := range md.day {
			md.day[i] = -1
		}
		p.models[model] = md
	}
	return md
}

// foldLocked folds a bucket's accumulated count into its cross-day rate
// when the accumulation belongs to an earlier day than today.
func (p *Predictor) foldLocked(md *modelDemand, b, today int) {
	if md.day[b] == today {
		return
	}
	if md.day[b] >= 0 {
		if md.rate[b] == 0 {
			md.rate[b] = md.count[b]
		} else {
			md.rate[b] += histBlend * (md.count[b] - md.rate[b])
		}
		// Decay for every observed-but-empty day in between, so a model
		// that goes quiet stops being pre-warmed.
		for d := md.day[b] + 1; d < today; d++ {
			md.rate[b] *= 1 - histBlend
		}
	}
	md.count[b] = 0
	md.day[b] = today
}

// bucketIndex maps a timestamp to its time-of-day bucket.
func (p *Predictor) bucketIndex(t time.Time) int {
	dayOff := time.Duration(t.Hour())*time.Hour +
		time.Duration(t.Minute())*time.Minute +
		time.Duration(t.Second())*time.Second
	return int(dayOff / p.bucket)
}

// dayIndex returns an absolute day counter for t.
func dayIndex(t time.Time) int {
	return int(t.Unix() / 86400)
}
