package sched

import (
	"sync"
	"time"
)

// TTLPolicy decides whether an idle backend's residency should be
// reclaimed. It replaces the reactive reaper's fixed keep-alive
// comparison; implementations are consulted by each node's reaper and
// notified of evictions and of the accesses that follow them, so
// adaptive policies can learn from premature reclaims.
//
// The interface is structurally identical to core.TTLPolicy so sched
// policies plug straight into core.Options without an import cycle.
type TTLPolicy interface {
	// Name identifies the policy in metrics and experiment rows.
	Name() string
	// ShouldEvict reports whether a backend for model, idle for idleFor
	// at time now, may be swapped out.
	ShouldEvict(model string, idleFor time.Duration, now time.Time) bool
	// NoteEvict records that model was evicted at now.
	NoteEvict(model string, now time.Time)
	// NoteAccess records that model was demanded while not resident
	// (a reactive swap-in) at now.
	NoteAccess(model string, now time.Time)
}

// FixedTTL evicts after a constant idle window — llama-swap's `ttl`
// auto-unload and the pre-sched reaper behaviour, expressed as a policy.
type FixedTTL struct {
	TTL time.Duration
}

// Name implements TTLPolicy.
func (f *FixedTTL) Name() string { return "fixed" }

// ShouldEvict implements TTLPolicy.
func (f *FixedTTL) ShouldEvict(model string, idleFor time.Duration, now time.Time) bool {
	return idleFor >= f.TTL
}

// NoteEvict implements TTLPolicy.
func (f *FixedTTL) NoteEvict(model string, now time.Time) {}

// NoteAccess implements TTLPolicy.
func (f *FixedTTL) NoteAccess(model string, now time.Time) {}

// AdaptiveTTL adjusts each model's TTL from its post-eviction hit rate:
// a demand arriving shortly after an eviction (a "premature reclaim")
// doubles the model's TTL; an eviction that stays cold decays it back
// toward Base. Models with sticky demand earn long residency; one-shot
// models fall back quickly.
type AdaptiveTTL struct {
	// Base is the starting TTL for unseen models.
	Base time.Duration
	// Min/Max clamp the per-model TTL (defaults: Base/4 and 8×Base).
	Min, Max time.Duration
	// RefetchWindow classifies a post-eviction access as premature
	// (default: Base).
	RefetchWindow time.Duration

	mu        sync.Mutex
	ttl       map[string]time.Duration
	lastEvict map[string]time.Time
}

// NewAdaptiveTTL returns an adaptive policy around the base TTL.
func NewAdaptiveTTL(base time.Duration) *AdaptiveTTL {
	return &AdaptiveTTL{
		Base:          base,
		Min:           base / 4,
		Max:           8 * base,
		RefetchWindow: base,
		ttl:           make(map[string]time.Duration),
		lastEvict:     make(map[string]time.Time),
	}
}

// Name implements TTLPolicy.
func (a *AdaptiveTTL) Name() string { return "adaptive" }

// TTLFor returns the model's current TTL.
func (a *AdaptiveTTL) TTLFor(model string) time.Duration {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.ttlLocked(model)
}

func (a *AdaptiveTTL) ttlLocked(model string) time.Duration {
	if ttl, ok := a.ttl[model]; ok {
		return ttl
	}
	return a.Base
}

// ShouldEvict implements TTLPolicy.
func (a *AdaptiveTTL) ShouldEvict(model string, idleFor time.Duration, now time.Time) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	return idleFor >= a.ttlLocked(model)
}

// NoteEvict implements TTLPolicy: decay the TTL toward Min — if the
// eviction was wrong, the refetch that follows will correct it upward.
func (a *AdaptiveTTL) NoteEvict(model string, now time.Time) {
	a.mu.Lock()
	defer a.mu.Unlock()
	ttl := a.ttlLocked(model) * 3 / 4
	if ttl < a.Min {
		ttl = a.Min
	}
	a.ttl[model] = ttl
	a.lastEvict[model] = now
}

// NoteAccess implements TTLPolicy: a cold demand soon after an eviction
// means the TTL was too short — double it.
func (a *AdaptiveTTL) NoteAccess(model string, now time.Time) {
	a.mu.Lock()
	defer a.mu.Unlock()
	ev, ok := a.lastEvict[model]
	if !ok || now.Sub(ev) > a.RefetchWindow {
		return
	}
	ttl := a.ttlLocked(model) * 2
	if ttl > a.Max {
		ttl = a.Max
	}
	a.ttl[model] = ttl
	delete(a.lastEvict, model)
}

// PredictiveTTL keeps a model resident while the demand predictor
// expects its next request to arrive before a cold swap-in would pay
// off: evicting is only worth it when the predicted gap exceeds the
// model's restore cost by a slack factor (Torpor's latency-aware
// keep-alive, driven by our predictor instead of a static profile).
type PredictiveTTL struct {
	// Predictor supplies per-model rate forecasts.
	Predictor *Predictor
	// Restore estimates a model's cold swap-in latency.
	Restore func(model string) time.Duration
	// Slack scales the restore cost into the minimum predicted gap that
	// justifies eviction (default 4).
	Slack float64
	// Floor is the minimum idle time before eviction is considered at
	// all, guarding against transient gaps (default 30s).
	Floor time.Duration
	// Ceiling force-evicts past this idle time regardless of forecast,
	// bounding the damage of an overconfident predictor (default 1h).
	Ceiling time.Duration
}

// NewPredictiveTTL returns a predictor-informed policy.
func NewPredictiveTTL(p *Predictor, restore func(model string) time.Duration) *PredictiveTTL {
	return &PredictiveTTL{
		Predictor: p,
		Restore:   restore,
		Slack:     4,
		Floor:     30 * time.Second,
		Ceiling:   time.Hour,
	}
}

// Name implements TTLPolicy.
func (p *PredictiveTTL) Name() string { return "predictive" }

// ShouldEvict implements TTLPolicy.
func (p *PredictiveTTL) ShouldEvict(model string, idleFor time.Duration, now time.Time) bool {
	if idleFor < p.Floor {
		return false
	}
	if idleFor >= p.Ceiling {
		return true
	}
	rate := p.Predictor.Rate(model, now)
	if rate <= 0 {
		return true // no forecast demand: reclaim
	}
	gap := time.Duration(float64(time.Second) / rate)
	restore := time.Duration(0)
	if p.Restore != nil {
		restore = p.Restore(model)
	}
	return gap > time.Duration(p.Slack*float64(restore))
}

// NoteEvict implements TTLPolicy.
func (p *PredictiveTTL) NoteEvict(model string, now time.Time) {}

// NoteAccess implements TTLPolicy: the predictor already sees every
// arrival via Observe; nothing extra to learn here.
func (p *PredictiveTTL) NoteAccess(model string, now time.Time) {}
