package sched

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"swapservellm/internal/chaos"
	"swapservellm/internal/config"
	"swapservellm/internal/metrics"
)

// Admission is the gateway's per-class admission controller: a token
// bucket per class guarantees every class its configured share, and a
// queue-delay check sheds work whose predicted wait already exceeds its
// class SLO. Predicted wait is priority-aware — a class only waits
// behind work of equal or higher priority — so overload pressure sheds
// the lowest classes first while the guaranteed buckets keep even those
// from starving.
type Admission struct {
	inj *chaos.Injector
	reg *metrics.Registry

	mu      sync.Mutex
	classes map[string]*classState
	service float64 // EWMA service time, seconds
}

// classState is one class's runtime admission state.
type classState struct {
	cfg      config.SchedClass
	tokens   float64
	refilled time.Time
	inflight int
}

// Decision is the outcome of one admission check.
type Decision struct {
	// Admit reports whether the request may proceed.
	Admit bool
	// Reason explains the outcome: "slack" (predicted wait within SLO),
	// "guaranteed" (token-bucket share), "shed" (wait over SLO, no
	// tokens), or "chaos" (injected misprediction flipped the call).
	Reason string
	// RetryAfter is the suggested client backoff for a shed: the time
	// until the class's bucket refills one token.
	RetryAfter time.Duration
}

// NewAdmission builds an admission controller for the declared classes.
// reg may be nil (no metrics); inj may be nil (no chaos).
func NewAdmission(cfg config.SchedCfg, reg *metrics.Registry, inj *chaos.Injector) (*Admission, error) {
	if !cfg.Enabled() {
		return nil, fmt.Errorf("sched: admission requires declared classes")
	}
	a := &Admission{inj: inj, reg: reg, classes: make(map[string]*classState, len(cfg.Classes))}
	for _, c := range cfg.Classes {
		a.classes[c.Name] = &classState{cfg: c, tokens: c.Burst}
	}
	return a, nil
}

// Classes returns the declared class names sorted by priority rank
// (most important first), ties broken by name.
func (a *Admission) Classes() []string {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]string, 0, len(a.classes))
	for name := range a.classes {
		out = append(out, name)
	}
	sort.Slice(out, func(i, j int) bool {
		pi, pj := a.classes[out[i]].cfg.Priority, a.classes[out[j]].cfg.Priority
		if pi != pj {
			return pi < pj
		}
		return out[i] < out[j]
	})
	return out
}

// SLOFor returns the declared SLO for a class (zero if unknown).
func (a *Admission) SLOFor(class string) time.Duration {
	a.mu.Lock()
	defer a.mu.Unlock()
	if st, ok := a.classes[class]; ok {
		return st.cfg.SLO()
	}
	return 0
}

// PredictedWait estimates the queue delay a new request of class would
// see: the in-flight work of every class at its priority or higher,
// costed at the EWMA service time. Lower classes are invisible to it —
// the priority-aware estimate that confines shedding to the bottom.
func (a *Admission) PredictedWait(class string) time.Duration {
	a.mu.Lock()
	defer a.mu.Unlock()
	st, ok := a.classes[class]
	if !ok {
		return 0
	}
	var ahead int
	for _, other := range a.classes {
		if other.cfg.Priority <= st.cfg.Priority {
			ahead += other.inflight
		}
	}
	return time.Duration(float64(ahead) * a.service * float64(time.Second))
}

// Decide runs one admission check for class with the given predicted
// wait at now. Unknown classes are admitted (the gateway validates
// class names before calling). The chaos site sched.admit, when fired,
// inverts the decision — a deliberately mispredicted admission.
func (a *Admission) Decide(class string, predictedWait time.Duration, now time.Time) Decision {
	a.mu.Lock()
	st, ok := a.classes[class]
	if !ok {
		a.mu.Unlock()
		return Decision{Admit: true, Reason: "unclassed"}
	}
	d := a.decideLocked(st, predictedWait, now)
	a.mu.Unlock()

	if out := a.inj.At(chaos.SiteSchedAdmit); out.Err != nil {
		d.Admit = !d.Admit
		d.Reason = "chaos"
		if !d.Admit && d.RetryAfter == 0 {
			d.RetryAfter = time.Second
		}
	}
	if a.reg != nil {
		if d.Admit {
			a.reg.Counter("sched_admitted_" + class).Inc()
		} else {
			a.reg.Counter("sched_shed_" + class).Inc()
		}
	}
	return d
}

// decideLocked applies the admission policy proper.
func (a *Admission) decideLocked(st *classState, predictedWait time.Duration, now time.Time) Decision {
	// Refill the bucket lazily.
	if !st.refilled.IsZero() {
		st.tokens += now.Sub(st.refilled).Seconds() * st.cfg.RatePerSec
		if st.tokens > st.cfg.Burst {
			st.tokens = st.cfg.Burst
		}
	}
	st.refilled = now

	// Spare capacity first: while the predicted wait honours the SLO the
	// request rides free, preserving tokens for overload.
	if predictedWait <= st.cfg.SLO() {
		return Decision{Admit: true, Reason: "slack"}
	}
	// Guaranteed share: the bucket admits the class's configured rate
	// even when the system is saturated, so no class starves.
	if st.tokens >= 1 {
		st.tokens--
		return Decision{Admit: true, Reason: "guaranteed"}
	}
	wait := time.Duration((1 - st.tokens) / st.cfg.RatePerSec * float64(time.Second))
	return Decision{Reason: "shed", RetryAfter: wait}
}

// NoteStart records an admitted request of class entering service.
func (a *Admission) NoteStart(class string) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if st, ok := a.classes[class]; ok {
		st.inflight++
	}
}

// NoteDone records a request of class finishing with the given
// end-to-end latency, updating the EWMA service-time estimate, the
// per-class latency histogram, and the class's SLO-attainment gauge.
func (a *Admission) NoteDone(class string, latency time.Duration) {
	a.mu.Lock()
	st, ok := a.classes[class]
	if ok {
		if st.inflight > 0 {
			st.inflight--
		}
		const alpha = 0.2
		if a.service == 0 {
			a.service = latency.Seconds()
		} else {
			a.service += alpha * (latency.Seconds() - a.service)
		}
	}
	a.mu.Unlock()
	if !ok || a.reg == nil {
		return
	}
	h := a.reg.Histogram("sched_latency_" + class)
	h.Observe(latency)
	if n := h.Count(); n > 0 {
		att := float64(h.CountBelow(st.cfg.SLO())) / float64(n)
		a.reg.Gauge("sched_slo_attainment_" + class).Set(att)
	}
}
