package sched

import (
	"testing"
	"time"

	"swapservellm/internal/chaos"
	"swapservellm/internal/metrics"
)

// trainSteady teaches the predictor a steady rate of one arrival every
// gap for the hour before now.
func trainSteady(p *Predictor, model string, now time.Time, gap time.Duration) {
	for at := now.Add(-time.Hour); at.Before(now); at = at.Add(gap) {
		p.Observe(model, at)
	}
}

func TestPrewarmerIssuesAndScoresHit(t *testing.T) {
	pred := NewPredictor(10*time.Minute, 15*time.Minute)
	now := monday.Add(10 * time.Hour)
	trainSteady(pred, "busy", now, 30*time.Second)

	reg := metrics.NewRegistry()
	var issued []string
	pw := NewPrewarmer(PrewarmConfig{
		Predictor: pred,
		Models:    []string{"busy", "idle"},
		Horizon:   5 * time.Minute,
		Interval:  time.Minute,
		Threshold: 0.5,
		Issue:     func(m string) bool { issued = append(issued, m); return true },
		Registry:  reg,
	})

	pw.Sweep(now)
	if len(issued) != 1 || issued[0] != "busy" {
		t.Fatalf("issued %v, want [busy]", issued)
	}
	if got := reg.Counter("sched_prefetch_issued").Value(); got != 1 {
		t.Fatalf("issued counter %v, want 1", got)
	}
	// A second sweep inside the horizon must not re-issue.
	pw.Sweep(now.Add(time.Minute))
	if len(issued) != 1 {
		t.Fatalf("re-issued inside the horizon: %v", issued)
	}
	// A warm placement inside the horizon scores a hit.
	pw.NotePlacement("busy", true, now.Add(2*time.Minute))
	if got := reg.Counter("sched_prefetch_hits").Value(); got != 1 {
		t.Fatalf("hit counter %v, want 1", got)
	}
}

func TestPrewarmerScoresMissOnExpiry(t *testing.T) {
	pred := NewPredictor(10*time.Minute, 15*time.Minute)
	now := monday.Add(10 * time.Hour)
	trainSteady(pred, "busy", now, 30*time.Second)

	reg := metrics.NewRegistry()
	pw := NewPrewarmer(PrewarmConfig{
		Predictor: pred,
		Models:    []string{"busy"},
		Horizon:   5 * time.Minute,
		Interval:  time.Minute,
		Threshold: 0.5,
		Issue:     func(string) bool { return true },
		Registry:  reg,
	})
	pw.Sweep(now)
	// No warm placement arrives; the horizon lapses.
	pw.NotePlacement("busy", false, now.Add(6*time.Minute))
	if got := reg.Counter("sched_prefetch_misses").Value(); got != 1 {
		t.Fatalf("miss counter %v, want 1", got)
	}
	if got := reg.Counter("sched_prefetch_hits").Value(); got != 0 {
		t.Fatalf("hit counter %v, want 0", got)
	}
}

// TestPrewarmerChaosSuppression: a fired sched.prefetch site swallows
// the pre-warm the predictor asked for.
func TestPrewarmerChaosSuppression(t *testing.T) {
	pred := NewPredictor(10*time.Minute, 15*time.Minute)
	now := monday.Add(10 * time.Hour)
	trainSteady(pred, "busy", now, 30*time.Second)

	reg := metrics.NewRegistry()
	var issued int
	pw := NewPrewarmer(PrewarmConfig{
		Predictor: pred,
		Models:    []string{"busy"},
		Horizon:   5 * time.Minute,
		Interval:  time.Minute,
		Threshold: 0.5,
		Issue:     func(string) bool { issued++; return true },
		Registry:  reg,
		Chaos:     chaos.FailNext(chaos.SiteSchedPrefetch, 1),
	})
	pw.Sweep(now)
	if issued != 0 {
		t.Fatal("pre-warm issued despite chaos suppression")
	}
	if got := reg.Counter("sched_prefetch_suppressed").Value(); got != 1 {
		t.Fatalf("suppressed counter %v, want 1", got)
	}
	// The injector exhausted, the next sweep issues normally.
	pw.Sweep(now.Add(time.Minute))
	if issued != 1 {
		t.Fatalf("issued %d after suppression cleared, want 1", issued)
	}
}
