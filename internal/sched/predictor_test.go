package sched

import (
	"math"
	"testing"
	"time"

	"swapservellm/internal/workload"
)

// monday is a weekday anchor (2025-11-17 is a Monday), so a
// train-weekdays / predict-weekday split stays inside the diurnal
// curve's weekday regime.
var monday = time.Date(2025, 11, 17, 0, 0, 0, 0, time.UTC)

// TestPredictorGoldenTrace trains the predictor on three weekdays of
// the diurnal coding workload and scores its forecast for the fourth
// against the actual arrivals: the golden-trace tolerance check for the
// time-of-day histogram.
func TestPredictorGoldenTrace(t *testing.T) {
	const (
		model = "llama3.1:8b-fp16"
		peak  = 60.0 // requests per hour at the diurnal peak
	)
	gen := workload.NewGenerator(42)
	reqs := gen.Arrivals(workload.ClassCoding, model, monday, monday.AddDate(0, 0, 4), peak, 1)

	p := NewPredictor(10*time.Minute, 15*time.Minute)
	evalStart := monday.AddDate(0, 0, 3) // Thursday
	actual := make([]float64, 24)
	for _, r := range reqs {
		if r.At.Before(evalStart) {
			p.Observe(r.Model, r.At)
			continue
		}
		actual[r.At.Hour()]++
	}
	if !p.Trained(model) {
		t.Fatal("predictor untrained after three days of arrivals")
	}

	var predTotal, actTotal, peakErr float64
	predicted := make([]float64, 24)
	for h := 0; h < 24; h++ {
		from := evalStart.Add(time.Duration(h) * time.Hour)
		predicted[h] = p.ExpectedArrivals(model, from, from.Add(time.Hour))
		predTotal += predicted[h]
		actTotal += actual[h]
	}

	// Daily volume within 25% of the realized trace.
	if predTotal < 0.75*actTotal || predTotal > 1.25*actTotal {
		t.Fatalf("daily volume: predicted %.0f vs actual %.0f (want within 25%%)", predTotal, actTotal)
	}

	// Business-hours shape: each core hour within 50% relative error
	// (the actual trace is itself Poisson-noisy at ~13%/hour).
	for h := 9; h <= 16; h++ {
		if actual[h] == 0 {
			continue
		}
		rel := math.Abs(predicted[h]-actual[h]) / actual[h]
		if rel > 0.5 {
			t.Errorf("hour %02d: predicted %.1f vs actual %.0f (rel err %.0f%%)", h, predicted[h], actual[h], 100*rel)
		}
		peakErr += rel
	}

	// The ramp must be anticipated: forecast for 9am clearly above the
	// overnight floor before any Thursday arrival was observed.
	night := predicted[3]
	if predicted[9] < 4*night+1 {
		t.Fatalf("no ramp anticipation: 9am forecast %.1f vs 3am %.1f", predicted[9], night)
	}

	// Overnight stays near the floor: the predictor must not smear the
	// peak into the trough.
	if peakHour := argmax(predicted); peakHour < 10 || peakHour > 15 {
		t.Fatalf("predicted peak hour %d outside the 10..15 business window", argmax(predicted))
	}
}

// TestPredictorRecentRateLifts checks the EWMA side: when live traffic
// runs hotter than history, the short-horizon forecast follows it.
func TestPredictorRecentRateLifts(t *testing.T) {
	p := NewPredictor(10*time.Minute, 15*time.Minute)
	now := monday.Add(12 * time.Hour)
	// History: one sparse arrival per bucket yesterday.
	for i := 0; i < 96; i++ {
		p.Observe("m", monday.AddDate(0, 0, -1).Add(time.Duration(i)*15*time.Minute))
	}
	// Live burst: one arrival per second for the last minute.
	for i := 60; i > 0; i-- {
		p.Observe("m", now.Add(-time.Duration(i)*time.Second))
	}
	rate := p.Rate("m", now)
	if rate < 0.5 {
		t.Fatalf("recent burst at 1 req/s forecast as %.3f req/s", rate)
	}
	// Far beyond the EWMA window the burst must have decayed back to
	// the (tiny) historical rate.
	far := p.Rate("m", now.Add(2*time.Hour))
	if far > 0.05 {
		t.Fatalf("burst leaked %.3f req/s into a 2h-out forecast", far)
	}
}

func argmax(xs []float64) int {
	best := 0
	for i, x := range xs {
		if x > xs[best] {
			best = i
		}
	}
	return best
}
