package sched

import (
	"testing"
	"time"

	"swapservellm/internal/chaos"
	"swapservellm/internal/config"
	"swapservellm/internal/metrics"
)

// testClasses is a three-tier declaration used across admission tests.
func testClasses() config.SchedCfg {
	cfg := config.SchedCfg{
		Classes: []config.SchedClass{
			{Name: "interactive", Priority: 0, SLOSec: 1, RatePerSec: 5},
			{Name: "standard", Priority: 1, SLOSec: 5, RatePerSec: 2},
			{Name: "batch", Priority: 2, SLOSec: 30, RatePerSec: 1},
		},
	}
	// Mirror config validation's burst defaulting.
	for i := range cfg.Classes {
		c := &cfg.Classes[i]
		c.Burst = 2 * c.RatePerSec
		if c.Burst < 1 {
			c.Burst = 1
		}
	}
	return cfg
}

// TestAdmissionNoStarvation is the guaranteed-share property test:
// under sustained 10× overload with every class's predicted wait far
// over its SLO, each class must still be admitted at no less than its
// token-bucket rate — no class starves, however low its priority.
func TestAdmissionNoStarvation(t *testing.T) {
	reg := metrics.NewRegistry()
	adm, err := NewAdmission(testClasses(), reg, nil)
	if err != nil {
		t.Fatal(err)
	}

	const seconds = 120
	wait := 10 * time.Minute // hopeless: over every SLO
	admitted := map[string]int{}
	offered := map[string]int{}
	for s := 0; s < seconds; s++ {
		now := monday.Add(time.Duration(s) * time.Second)
		for _, class := range adm.Classes() {
			// 10× each class's guaranteed rate, spread within the second.
			rate := map[string]float64{"interactive": 5, "standard": 2, "batch": 1}[class]
			n := int(rate * 10)
			for i := 0; i < n; i++ {
				at := now.Add(time.Duration(i) * time.Second / time.Duration(n))
				offered[class]++
				if adm.Decide(class, wait, at).Admit {
					admitted[class]++
				}
			}
		}
	}

	for _, class := range adm.Classes() {
		rate := map[string]float64{"interactive": 5, "standard": 2, "batch": 1}[class]
		guaranteed := rate * seconds
		if got := float64(admitted[class]); got < 0.95*guaranteed {
			t.Errorf("class %s starved: admitted %.0f < guaranteed %.0f over %ds", class, got, guaranteed, seconds)
		}
		if admitted[class] == offered[class] {
			t.Errorf("class %s was never shed under 10x overload", class)
		}
	}
	// Counters mirror the decisions.
	if got := reg.Counter("sched_shed_batch").Value(); got == 0 {
		t.Error("sched_shed_batch counter is zero under overload")
	}
}

// TestAdmissionSlackPath: with predicted wait inside the SLO the
// request is admitted without spending a token.
func TestAdmissionSlackPath(t *testing.T) {
	adm, err := NewAdmission(testClasses(), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	now := monday
	for i := 0; i < 100; i++ {
		d := adm.Decide("batch", 0, now.Add(time.Duration(i)*10*time.Millisecond))
		if !d.Admit || d.Reason != "slack" {
			t.Fatalf("request %d: %+v, want slack admit", i, d)
		}
	}
}

// TestAdmissionPriorityWait: the predicted wait for a high class only
// counts work at its priority or higher, so overload from low classes
// cannot shed the top class.
func TestAdmissionPriorityWait(t *testing.T) {
	adm, err := NewAdmission(testClasses(), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Teach the service-time EWMA 1s per request, then park a pile of
	// batch work in flight.
	adm.NoteStart("standard")
	adm.NoteDone("standard", time.Second)
	for i := 0; i < 50; i++ {
		adm.NoteStart("batch")
	}
	if hi, lo := adm.PredictedWait("interactive"), adm.PredictedWait("batch"); hi >= lo {
		t.Fatalf("interactive wait %s not below batch wait %s", hi, lo)
	}
	if w := adm.PredictedWait("interactive"); w != 0 {
		t.Fatalf("interactive wait %s, want 0 with only batch in flight", w)
	}
}

// TestAdmissionRetryAfter: sheds carry a Retry-After hint derived from
// the bucket refill rate.
func TestAdmissionRetryAfter(t *testing.T) {
	adm, err := NewAdmission(testClasses(), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	now := monday
	wait := time.Hour
	var shed *Decision
	for i := 0; i < 100; i++ {
		d := adm.Decide("batch", wait, now)
		if !d.Admit {
			shed = &d
			break
		}
	}
	if shed == nil {
		t.Fatal("bucket never drained")
	}
	if shed.RetryAfter <= 0 || shed.RetryAfter > 2*time.Second {
		t.Fatalf("RetryAfter = %s, want (0, 2s] at 1 token/s", shed.RetryAfter)
	}
}

// TestAdmissionChaosFlip: a fired sched.admit site inverts the
// decision deterministically.
func TestAdmissionChaosFlip(t *testing.T) {
	adm, err := NewAdmission(testClasses(), nil, chaos.FailNext(chaos.SiteSchedAdmit, 1))
	if err != nil {
		t.Fatal(err)
	}
	d := adm.Decide("interactive", 0, monday)
	if d.Admit || d.Reason != "chaos" {
		t.Fatalf("first decision %+v, want chaos-flipped shed", d)
	}
	if d.RetryAfter <= 0 {
		t.Fatal("chaos shed missing Retry-After")
	}
	if d2 := adm.Decide("interactive", 0, monday.Add(time.Second)); !d2.Admit {
		t.Fatalf("second decision %+v, want normal admit", d2)
	}
}
