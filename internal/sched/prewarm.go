// Package sched implements predictive SLO-aware scheduling for the
// swap-based fleet: priority classes with latency SLOs, a demand
// predictor over the diurnal workload, predictor-driven checkpoint
// prefetch and engine pre-warm, keep-alive/TTL eviction policies, and
// gateway admission control with load shedding. Every decision point
// (admit, prefetch, evict) is a declared chaos.Site, and all decision
// logic takes explicit timestamps or an injected simclock.Clock so the
// SLO ablation replays deterministically.
package sched

import (
	"sync"
	"time"

	"swapservellm/internal/chaos"
	"swapservellm/internal/metrics"
	"swapservellm/internal/simclock"
)

// Prewarmer turns demand forecasts into checkpoint prefetch / engine
// pre-warm actions ahead of predicted ramps: each sweep it asks the
// predictor how many arrivals each model should see within the horizon
// and, above the threshold, asks the cluster (via the issue callback)
// to make the model warm somewhere. A pre-warm is scored a hit when a
// placement finds the model warm before the horizon expires, a miss
// otherwise — the misprediction signal the chaos soak exploits.
type Prewarmer struct {
	pred      *Predictor
	inj       *chaos.Injector
	reg       *metrics.Registry
	horizon   time.Duration
	interval  time.Duration
	threshold float64
	models    []string
	issue     func(model string) bool

	mu      sync.Mutex
	pending map[string]time.Time // model -> hit deadline

	clock simclock.Clock
	halt  chan struct{}
	done  chan struct{}
}

// PrewarmConfig assembles a Prewarmer.
type PrewarmConfig struct {
	// Predictor supplies forecasts (required).
	Predictor *Predictor
	// Models is the fixed set of models to watch.
	Models []string
	// Horizon is the forecast lookahead; Interval the sweep period.
	Horizon, Interval time.Duration
	// Threshold is the expected-arrivals trigger within the horizon.
	Threshold float64
	// Issue makes a model warm somewhere in the fleet, returning true
	// when a pre-warm was actually started (false: already warm or no
	// capacity). Required.
	Issue func(model string) bool
	// Registry receives prefetch hit/miss counters (may be nil).
	Registry *metrics.Registry
	// Chaos injects pre-warm suppression at sched.prefetch (may be nil).
	Chaos *chaos.Injector
}

// NewPrewarmer builds a pre-warmer; call Run to start its sweep loop,
// or drive Sweep directly from a virtual-time experiment.
func NewPrewarmer(cfg PrewarmConfig) *Prewarmer {
	models := append([]string(nil), cfg.Models...)
	return &Prewarmer{
		pred:      cfg.Predictor,
		inj:       cfg.Chaos,
		reg:       cfg.Registry,
		horizon:   cfg.Horizon,
		interval:  cfg.Interval,
		threshold: cfg.Threshold,
		models:    models,
		issue:     cfg.Issue,
		pending:   make(map[string]time.Time),
	}
}

// Run starts the sweep loop on clock; Halt stops it.
func (p *Prewarmer) Run(clock simclock.Clock) {
	p.clock = clock
	p.halt = make(chan struct{})
	p.done = make(chan struct{})
	gate := simclock.GateFor(clock)
	gate.Go(func() {
		defer close(p.done)
		for gate.Wait(p.interval, p.halt) < 0 {
			p.Sweep(clock.Now())
		}
	})
}

// Halt stops the sweep loop and waits for it to exit, shedding the run
// token while the loop goroutine drains.
func (p *Prewarmer) Halt() {
	if p.halt == nil {
		return
	}
	close(p.halt)
	simclock.GateFor(p.clock).Block(func() { <-p.done })
	p.halt = nil
}

// Sweep runs one pre-warm pass at time now. Models are visited in the
// fixed construction order so a sweep is deterministic.
func (p *Prewarmer) Sweep(now time.Time) {
	p.expire(now)
	for _, m := range p.models {
		p.mu.Lock()
		_, inFlight := p.pending[m]
		p.mu.Unlock()
		if inFlight {
			continue
		}
		expected := p.pred.ExpectedArrivals(m, now, now.Add(p.horizon))
		if expected < p.threshold {
			continue
		}
		// Chaos: a fired sched.prefetch suppresses the pre-warm the
		// predictor asked for — a forced misprediction.
		if out := p.inj.At(chaos.SiteSchedPrefetch); out.Err != nil {
			if p.reg != nil {
				p.reg.Counter("sched_prefetch_suppressed").Inc()
			}
			continue
		}
		if !p.issue(m) {
			continue
		}
		if p.reg != nil {
			p.reg.Counter("sched_prefetch_issued").Inc()
		}
		p.mu.Lock()
		p.pending[m] = now.Add(p.horizon)
		p.mu.Unlock()
	}
}

// NotePlacement records a placement outcome for model at now: a warm
// placement within a pending pre-warm's horizon scores a hit.
func (p *Prewarmer) NotePlacement(model string, warm bool, now time.Time) {
	p.expire(now)
	p.mu.Lock()
	deadline, ok := p.pending[model]
	if !ok || !warm || now.After(deadline) {
		p.mu.Unlock()
		return
	}
	delete(p.pending, model)
	p.mu.Unlock()
	if p.reg != nil {
		p.reg.Counter("sched_prefetch_hits").Inc()
	}
}

// expire retires pre-warms whose horizon passed with no warm placement.
func (p *Prewarmer) expire(now time.Time) {
	p.mu.Lock()
	var missed int
	for m, deadline := range p.pending {
		if now.After(deadline) {
			delete(p.pending, m)
			missed++
		}
	}
	p.mu.Unlock()
	if missed > 0 && p.reg != nil {
		p.reg.Counter("sched_prefetch_misses").Add(float64(missed))
	}
}
