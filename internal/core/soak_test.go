package core

import (
	"context"
	"math/rand"
	"sync"
	"testing"
	"time"

	"swapservellm/internal/config"
	"swapservellm/internal/openai"
	"swapservellm/internal/simclock"
)

// TestSoakRandomChurn drives a five-model deployment with randomized
// concurrent traffic, explicit admin swaps, and memory pressure, then
// checks the system's conservation invariants: no GPU or host-memory
// leaks, consistent reservation accounting, and every backend settled in
// a legal state.
func TestSoakRandomChurn(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	modelNames := []string{
		"llama3.2:1b-fp16",
		"llama3.2:3b-fp16",
		"deepseek-r1:7b-q4",
		"deepseek-r1:14b-q4",
		"gemma:7b-fp16",
	}
	cfg := config.Default()
	cfg.Global.KeepAliveSec = 20
	for _, name := range modelNames {
		cfg.Models = append(cfg.Models, config.Model{Name: name, Engine: "ollama"})
	}
	s := startServer(t, cfg, Options{Clock: simclock.NewScaled(testEpoch, 2000)})

	// Memory pressure: leave ~35 GiB of headroom so evictions happen.
	dev, _ := s.Topology().Device(0)
	if err := dev.Alloc("soak-squatter", 45*gib); err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(99))
	var wg sync.WaitGroup
	var mu sync.Mutex
	served, failed := 0, 0
	sem := make(chan struct{}, 10)
	const requests = 120
	for i := 0; i < requests; i++ {
		// All random draws happen here: rng is not goroutine-safe.
		model := modelNames[rng.Intn(len(modelNames))]
		action := rng.Intn(10)
		maxTokens := 1 + rng.Intn(8)
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, model string, action, maxTokens int) {
			defer wg.Done()
			defer func() { <-sem }()
			switch {
			case action == 0:
				// Occasional explicit admin swap-out (may legitimately
				// fail if the backend is busy or already out).
				b, _ := s.Backend(model)
				s.Controller().SwapOut(context.Background(), b)
			default:
				seed := int64(i)
				_, err := openai.NewClient(s.URL()).ChatCompletion(context.Background(),
					&openai.ChatCompletionRequest{
						Model:     model,
						Messages:  []openai.Message{{Role: "user", Content: "soak"}},
						Seed:      &seed,
						MaxTokens: maxTokens,
					})
				mu.Lock()
				if err != nil {
					failed++
				} else {
					served++
				}
				mu.Unlock()
			}
		}(i, model, action, maxTokens)
	}
	wg.Wait()

	if failed > 0 {
		t.Errorf("%d/%d requests failed during churn", failed, served+failed)
	}

	// Let in-flight transitions settle (reaper sweeps, pending swaps).
	deadline := time.Now().Add(5 * time.Second)
	settled := func() bool {
		for _, b := range s.Backends() {
			st := b.State()
			if st != BackendRunning && st != BackendSwappedOut {
				return false
			}
			if b.Pending() > 0 || b.Active() > 0 {
				return false
			}
		}
		return s.TaskManager().PendingCount() == 0
	}
	for !settled() {
		if time.Now().After(deadline) {
			for _, b := range s.Backends() {
				t.Logf("backend %s: state=%v pending=%d active=%d",
					b.Name(), b.State(), b.Pending(), b.Active())
			}
			t.Fatal("system did not settle after churn")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Invariant 1: device accounting. Used = squatter + running backends.
	var wantUsed int64 = 45 * gib
	for _, b := range s.Backends() {
		if b.State() == BackendRunning {
			wantUsed += b.Container().Engine().GPUBytes()
		}
	}
	if got := dev.Used(); got != wantUsed {
		t.Errorf("device used = %d, want %d (per-backend sum)", got, wantUsed)
	}

	// Invariant 2: host snapshot accounting. HostUsed = sum of snapshots
	// of swapped-out backends.
	var wantHost int64
	for _, b := range s.Backends() {
		if b.State() == BackendSwappedOut {
			img, err := s.driver.ImageBytes(b.Container().ID())
			if err != nil {
				t.Fatalf("image bytes for %s: %v", b.Name(), err)
			}
			wantHost += img
		}
	}
	if got := s.driver.HostUsed(); got != wantHost {
		t.Errorf("host snapshot bytes = %d, want %d", got, wantHost)
	}

	// Invariant 3: no reservation headroom leaked.
	if got := s.TaskManager().Reserved(0); got != 0 {
		t.Errorf("leaked reservation headroom: %d bytes", got)
	}

	// Invariant 4: every backend still serves.
	for _, name := range modelNames {
		seed := int64(7)
		if _, err := openai.NewClient(s.URL()).ChatCompletion(context.Background(),
			&openai.ChatCompletionRequest{
				Model:     name,
				Messages:  []openai.Message{{Role: "user", Content: "post-soak"}},
				Seed:      &seed,
				MaxTokens: 1,
			}); err != nil {
			t.Errorf("%s unservable after soak: %v", name, err)
		}
	}
}
