package core

import (
	"context"
	"net/http"
	"time"
)

// forwardResult carries the backend's response (or failure) to the router
// goroutine holding the client connection.
type forwardResult struct {
	resp *http.Response
	err  error
}

// queuedRequest is the unit the request handler enqueues (§3.1 ②): the
// inference request, its response channel, and metadata.
type queuedRequest struct {
	// ctx is the client request context; cancellation abandons the work.
	// Carrying it in the queue item is the same exception the standard
	// library makes for http.Request: the struct IS the call, handed
	// across a channel to the worker that executes it.
	//swaplint:ignore ctxcheck queuedRequest is a per-call envelope crossing the worker queue, not long-lived state
	ctx context.Context
	// path is the engine API path the request targets
	// (/v1/chat/completions or /v1/completions).
	path string
	// body is the re-serialized OpenAI request forwarded to the engine.
	body []byte
	// arrivedAt is the arrival timestamp (simulated time).
	arrivedAt time.Time
	// result delivers exactly one forwardResult.
	result chan forwardResult
	// done is closed by the router when the response has been fully
	// relayed to the client, ending the request's in-flight accounting.
	done chan struct{}
}

// newQueuedRequest builds a queued request.
func newQueuedRequest(ctx context.Context, path string, body []byte, now time.Time) *queuedRequest {
	return &queuedRequest{
		ctx:       ctx,
		path:      path,
		body:      body,
		arrivedAt: now,
		result:    make(chan forwardResult, 1),
		done:      make(chan struct{}),
	}
}
