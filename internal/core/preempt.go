package core

import (
	"sort"
)

// Candidate summarizes one running backend for the preemption policy.
type Candidate struct {
	// Name identifies the backend.
	Name string
	// QueueLen is the backend's pending-request count: tier one of the
	// demand-aware metric — backends with shorter queues are less likely
	// to disrupt ongoing interactions (§3.5).
	QueueLen int
	// LastAccessedNanos is the most recent request arrival: tier two, the
	// LRU tie-breaker.
	LastAccessedNanos int64
	// FreeableBytes is the GPU memory a swap-out would reclaim.
	FreeableBytes int64
}

// PreemptionPolicy orders candidates for eviction.
type PreemptionPolicy interface {
	// Select returns the best eviction candidate, or false when the list
	// is empty.
	Select(cands []Candidate) (Candidate, bool)
	// Name identifies the policy in metrics and ablation output.
	Name() string
}

// DemandAwarePolicy is the paper's two-tier hybrid policy (§3.5): prefer
// the backend with the shortest request queue; break ties by oldest
// last-accessed time (LRU).
type DemandAwarePolicy struct{}

// Name implements PreemptionPolicy.
func (DemandAwarePolicy) Name() string { return "demand-aware" }

// Select implements PreemptionPolicy.
func (DemandAwarePolicy) Select(cands []Candidate) (Candidate, bool) {
	if len(cands) == 0 {
		return Candidate{}, false
	}
	best := cands[0]
	for _, c := range cands[1:] {
		if c.QueueLen < best.QueueLen ||
			(c.QueueLen == best.QueueLen && c.LastAccessedNanos < best.LastAccessedNanos) {
			best = c
		}
	}
	return best, true
}

// LRUPolicy ignores demand and evicts the least recently used backend —
// Ollama's scheduler behaviour (§2.3), used as an ablation baseline.
type LRUPolicy struct{}

// Name implements PreemptionPolicy.
func (LRUPolicy) Name() string { return "lru" }

// Select implements PreemptionPolicy.
func (LRUPolicy) Select(cands []Candidate) (Candidate, bool) {
	if len(cands) == 0 {
		return Candidate{}, false
	}
	best := cands[0]
	for _, c := range cands[1:] {
		if c.LastAccessedNanos < best.LastAccessedNanos {
			best = c
		}
	}
	return best, true
}

// LargestFirstPolicy evicts the backend holding the most GPU memory —
// frees capacity fastest but ignores demand entirely; ablation baseline.
type LargestFirstPolicy struct{}

// Name implements PreemptionPolicy.
func (LargestFirstPolicy) Name() string { return "largest-first" }

// Select implements PreemptionPolicy.
func (LargestFirstPolicy) Select(cands []Candidate) (Candidate, bool) {
	if len(cands) == 0 {
		return Candidate{}, false
	}
	best := cands[0]
	for _, c := range cands[1:] {
		if c.FreeableBytes > best.FreeableBytes {
			best = c
		}
	}
	return best, true
}

// RoundRobinPolicy evicts candidates in name order regardless of demand;
// the naive baseline for the ablation study.
type RoundRobinPolicy struct {
	next int
}

// Name implements PreemptionPolicy.
func (*RoundRobinPolicy) Name() string { return "round-robin" }

// Select implements PreemptionPolicy.
func (p *RoundRobinPolicy) Select(cands []Candidate) (Candidate, bool) {
	if len(cands) == 0 {
		return Candidate{}, false
	}
	sorted := append([]Candidate(nil), cands...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Name < sorted[j].Name })
	c := sorted[p.next%len(sorted)]
	p.next++
	return c, true
}

// PolicyByName resolves a policy name for configuration and the ablation
// harness.
func PolicyByName(name string) (PreemptionPolicy, bool) {
	switch name {
	case "", "demand-aware":
		return DemandAwarePolicy{}, true
	case "lru":
		return LRUPolicy{}, true
	case "largest-first":
		return LargestFirstPolicy{}, true
	case "round-robin":
		return &RoundRobinPolicy{}, true
	}
	return nil, false
}
