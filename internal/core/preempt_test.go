package core

import (
	"testing"
	"testing/quick"
)

func TestDemandAwareSelectsShortestQueue(t *testing.T) {
	p := DemandAwarePolicy{}
	cands := []Candidate{
		{Name: "busy", QueueLen: 5, LastAccessedNanos: 100},
		{Name: "idle", QueueLen: 0, LastAccessedNanos: 900},
		{Name: "medium", QueueLen: 2, LastAccessedNanos: 50},
	}
	got, ok := p.Select(cands)
	if !ok || got.Name != "idle" {
		t.Fatalf("Select = %+v, %v; want idle", got, ok)
	}
}

func TestDemandAwareLRUTieBreak(t *testing.T) {
	p := DemandAwarePolicy{}
	cands := []Candidate{
		{Name: "recent", QueueLen: 1, LastAccessedNanos: 900},
		{Name: "stale", QueueLen: 1, LastAccessedNanos: 100},
		{Name: "mid", QueueLen: 1, LastAccessedNanos: 500},
	}
	got, ok := p.Select(cands)
	if !ok || got.Name != "stale" {
		t.Fatalf("Select = %+v; want stale (oldest last-accessed)", got)
	}
}

func TestDemandAwareEmpty(t *testing.T) {
	if _, ok := (DemandAwarePolicy{}).Select(nil); ok {
		t.Fatal("Select on empty returned a candidate")
	}
}

// Property: the demand-aware selection is minimal under the two-tier
// ordering — no other candidate has a strictly shorter queue, and among
// equal queues none is older.
func TestDemandAwareMinimalProperty(t *testing.T) {
	p := DemandAwarePolicy{}
	f := func(queues []uint8, stamps []int64) bool {
		n := len(queues)
		if len(stamps) < n {
			n = len(stamps)
		}
		if n == 0 {
			return true
		}
		cands := make([]Candidate, n)
		for i := 0; i < n; i++ {
			cands[i] = Candidate{
				Name:              string(rune('a' + i%26)),
				QueueLen:          int(queues[i]),
				LastAccessedNanos: stamps[i],
			}
		}
		best, ok := p.Select(cands)
		if !ok {
			return false
		}
		for _, c := range cands {
			if c.QueueLen < best.QueueLen {
				return false
			}
			if c.QueueLen == best.QueueLen && c.LastAccessedNanos < best.LastAccessedNanos {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLRUPolicy(t *testing.T) {
	p := LRUPolicy{}
	cands := []Candidate{
		{Name: "hot", QueueLen: 0, LastAccessedNanos: 900},
		{Name: "cold", QueueLen: 9, LastAccessedNanos: 100},
	}
	// Pure LRU ignores queue length: picks "cold" even though it has the
	// longer queue — exactly the behaviour the demand-aware policy fixes.
	got, ok := p.Select(cands)
	if !ok || got.Name != "cold" {
		t.Fatalf("Select = %+v; want cold", got)
	}
	if _, ok := p.Select(nil); ok {
		t.Fatal("empty select returned candidate")
	}
}

func TestLargestFirstPolicy(t *testing.T) {
	p := LargestFirstPolicy{}
	cands := []Candidate{
		{Name: "small", FreeableBytes: 4 * gib},
		{Name: "large", FreeableBytes: 70 * gib},
		{Name: "mid", FreeableBytes: 20 * gib},
	}
	got, ok := p.Select(cands)
	if !ok || got.Name != "large" {
		t.Fatalf("Select = %+v; want large", got)
	}
	if _, ok := p.Select(nil); ok {
		t.Fatal("empty select returned candidate")
	}
}

func TestRoundRobinPolicyCycles(t *testing.T) {
	p := &RoundRobinPolicy{}
	cands := []Candidate{{Name: "b"}, {Name: "a"}, {Name: "c"}}
	var picks []string
	for i := 0; i < 3; i++ {
		got, ok := p.Select(cands)
		if !ok {
			t.Fatal("select failed")
		}
		picks = append(picks, got.Name)
	}
	if picks[0] != "a" || picks[1] != "b" || picks[2] != "c" {
		t.Fatalf("round-robin order = %v", picks)
	}
	if _, ok := p.Select(nil); ok {
		t.Fatal("empty select returned candidate")
	}
}

func TestPolicyByName(t *testing.T) {
	for _, name := range []string{"", "demand-aware", "lru", "largest-first", "round-robin"} {
		p, ok := PolicyByName(name)
		if !ok || p == nil {
			t.Errorf("PolicyByName(%q) failed", name)
		}
	}
	if _, ok := PolicyByName("random-forest"); ok {
		t.Fatal("unknown policy resolved")
	}
}

func TestBackendStateStrings(t *testing.T) {
	for s, want := range map[BackendState]string{
		BackendInitializing: "initializing",
		BackendRunning:      "running",
		BackendSwappedOut:   "swapped-out",
		BackendSwapping:     "swapping",
		BackendFailed:       "failed",
	} {
		if s.String() != want {
			t.Errorf("%d.String() = %q, want %q", s, s.String(), want)
		}
	}
}
