// Package-wide lock ordering — the single source of truth consumed by
// the swaplint lockorder analyzer. Every chain below declares "left
// before right": a goroutine may acquire a lock on the right while
// holding one on its left, never the reverse. The analyzer computes the
// transitive closure of these chains, compares it against the
// module-wide lock-order graph built from the call-graph acquisition
// summaries, and reports any observed inversion or cycle.
//
// The spine mirrors the swap path of §4.2: a preemption serializes per
// device (evictSerial), write-locks the victim backend (evictMu), then
// descends through the snapshot driver into the content-addressed
// checkpoint store, which publishes into the metrics registry. The
// cluster layer sits strictly above the per-node servers it shuts down
// and probes.
//
//swaplint:lockorder core.Backend.swapMu < core.Controller.evictSerial < core.Backend.evictMu < core.Backend.idleMu
//swaplint:lockorder core.Backend.evictMu < cudackpt.Driver.mu < ckptstore.Store.mu < metrics.Registry.mu
//swaplint:lockorder cluster.Cluster.mu < cluster.NodeRegistry.mu < core.Server.mu
//swaplint:lockorder container.Runtime.mu < cgroup.Freezer.mu

package core
