package core

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"sync"
	"time"

	"swapservellm/internal/cgroup"
	"swapservellm/internal/chaos"
	"swapservellm/internal/ckptstore"
	"swapservellm/internal/config"
	"swapservellm/internal/container"
	"swapservellm/internal/cudackpt"
	"swapservellm/internal/engine"
	"swapservellm/internal/gpu"
	"swapservellm/internal/metrics"
	"swapservellm/internal/models"
	"swapservellm/internal/obs"
	"swapservellm/internal/perfmodel"
	"swapservellm/internal/simclock"
	"swapservellm/internal/storage"
)

// Options carries optional overrides for Server construction; zero values
// select defaults.
type Options struct {
	// Clock overrides the simulation clock (default: a Scaled clock at
	// simclock.DefaultScale starting now).
	Clock simclock.Clock
	// Registry collects metrics (default: a fresh registry).
	Registry *metrics.Registry
	// Policy overrides the preemption policy (default: demand-aware).
	Policy PreemptionPolicy
	// GPUCount overrides the topology size (default: large enough for the
	// highest configured GPU index, at least the testbed's count).
	GPUCount int
	// HostSnapshotCapBytes bounds host memory for checkpoint images
	// (default: the config's snapshot_host_cap_gib; 0 = unlimited).
	HostSnapshotCapBytes int64
	// SpillToDisk spills LRU checkpoint images to disk under host-memory
	// pressure (default: the config's snapshot_spill).
	SpillToDisk bool
	// Chaos, when set, arms deterministic fault injection in every
	// substrate layer (checkpoint driver, cgroup freezer, model store).
	Chaos *chaos.Injector
	// Trace, when set, receives the driver's state-transition audit log
	// for invariant checking.
	Trace *chaos.Trace
	// Tracer, when set, records swap-lifecycle spans; requests and swaps
	// started under this server install it on their contexts. Exported at
	// /debug/trace as Chrome trace_event JSON.
	Tracer *obs.Tracer
	// TTL, when set, replaces the reaper's fixed keep-alive comparison
	// with a scheduling policy (internal/sched provides fixed, adaptive,
	// and predictive implementations). The reaper runs whenever TTL is
	// set, even with keep_alive_sec unset.
	TTL TTLPolicy
}

// Server is the assembled SwapServeLLM deployment: substrates, backends,
// task manager, scheduler, controller, workers, and the API router.
type Server struct {
	cfg     config.Config
	clock   simclock.Clock
	testbed perfmodel.Testbed
	reg     *metrics.Registry
	tracer  *obs.Tracer

	topo    *gpu.Topology
	freezer *cgroup.Freezer
	driver  *cudackpt.Driver
	rt      *container.Runtime
	store   *storage.ModelStore

	tm    *TaskManager
	ctrl  *Controller
	sched *Scheduler

	ttl      TTLPolicy
	chaosInj *chaos.Injector

	mu        sync.Mutex
	backends  map[string]*Backend // the model-name index of §3.2
	workers   []*worker
	reap      *reaper
	prefetch  *prefetcher
	gpumon    *gpuMonitorLoop
	initCache *engine.InitCache

	httpServer *http.Server
	listener   net.Listener
	started    bool
}

// New validates the configuration and assembles a server. Call Start to
// initialize backends and begin serving.
func New(cfg config.Config, opts Options) (*Server, error) {
	if err := cfg.Validate(models.Default()); err != nil {
		return nil, err
	}
	tb, _ := perfmodel.TestbedByName(cfg.Testbed)

	clock := opts.Clock
	if clock == nil {
		clock = simclock.NewScaledFromWall(simclock.DefaultScale)
	}
	reg := opts.Registry
	if reg == nil {
		reg = metrics.NewRegistry()
	}

	gpuCount := opts.GPUCount
	for _, m := range cfg.Models {
		for _, id := range m.GPUs {
			if id+1 > gpuCount {
				gpuCount = id + 1
			}
		}
	}
	if gpuCount < tb.GPUCount {
		gpuCount = tb.GPUCount
	}

	topo := gpu.NewTopology(tb.GPU, gpuCount, tb.GPUMemBytes)
	freezer := cgroup.NewFreezer()
	hostCap := opts.HostSnapshotCapBytes
	if hostCap == 0 && cfg.Global.SnapshotHostCapGiB > 0 {
		hostCap = int64(cfg.Global.SnapshotHostCapGiB * float64(int64(1)<<30))
	}
	driver := cudackpt.NewDriver(clock, tb, hostCap)
	if opts.SpillToDisk || cfg.Global.SnapshotSpill {
		driver.EnableSpill()
	}
	if cfg.Global.SwapChunkMiB > 0 {
		driver.SetChunkBytes(int64(cfg.Global.SwapChunkMiB) << 20)
	}
	var ckpts *ckptstore.Store
	if cfg.Global.CkptStore {
		ckpts = ckptstore.New(clock, tb,
			ckptstore.WithRegistry(reg),
			ckptstore.WithNodeID(cfg.Listen),
			ckptstore.WithHostCap(hostCap),
		)
		driver.AttachStore(ckpts)
	}
	rt := container.NewRuntime(clock, tb, freezer, driver)
	store := storage.NewModelStore(clock, tb)
	if opts.Chaos != nil {
		driver.SetChaos(opts.Chaos)
		freezer.SetChaos(opts.Chaos)
		store.SetChaos(opts.Chaos)
		if ckpts != nil {
			ckpts.SetChaos(opts.Chaos)
		}
	}
	if opts.Trace != nil {
		driver.SetTrace(opts.Trace)
	}

	tracer := opts.Tracer
	if tracer != nil {
		tracer.SetRegistry(reg)
	}

	tm := NewTaskManager(clock, topo)
	ctrl := NewController(clock,
		WithTestbed(tb),
		WithRuntime(rt),
		WithTaskManager(tm),
		WithPolicy(opts.Policy),
		WithRegistry(reg),
		WithTracer(tracer),
	)
	ctrl.SetPipelined(cfg.Global.PipelinedSwap)
	tm.SetEvictor(ctrl)
	sched := NewScheduler(clock, tm, ctrl, reg)
	// Every checkpoint chunk that frees device capacity immediately
	// re-runs the grant loop, so a pending reservation can be granted
	// incrementally before the victim's checkpoint finishes.
	driver.OnChunk(func(ev cudackpt.ChunkEvent) {
		if ev.Dir == perfmodel.DirD2H {
			tm.NotifyFreed()
		}
	})

	s := &Server{
		cfg:      cfg,
		clock:    clock,
		testbed:  tb,
		reg:      reg,
		tracer:   tracer,
		topo:     topo,
		freezer:  freezer,
		driver:   driver,
		rt:       rt,
		store:    store,
		tm:       tm,
		ctrl:     ctrl,
		sched:    sched,
		ttl:      opts.TTL,
		chaosInj: opts.Chaos,
		backends: make(map[string]*Backend),
	}
	sched.ttl = opts.TTL
	if cfg.Global.CompileCache {
		s.initCache = engine.NewInitCache()
	}
	return s, nil
}

// Clock returns the server's simulation clock.
func (s *Server) Clock() simclock.Clock { return s.clock }

// Registry returns the metrics registry.
func (s *Server) Registry() *metrics.Registry { return s.reg }

// Tracer returns the lifecycle tracer (nil when tracing is off).
func (s *Server) Tracer() *obs.Tracer { return s.tracer }

// traceCtx installs the server's tracer on ctx so spans started below
// (scheduler, controller, driver) are recorded. A no-op without a
// tracer or when ctx already carries one.
func (s *Server) traceCtx(ctx context.Context) context.Context {
	if s.tracer == nil || obs.TracerFrom(ctx) != nil {
		return ctx
	}
	return obs.WithTracer(ctx, s.tracer)
}

// Testbed returns the hardware profile.
func (s *Server) Testbed() perfmodel.Testbed { return s.testbed }

// TaskManager exposes the task manager (for tests and tools).
func (s *Server) TaskManager() *TaskManager { return s.tm }

// Controller exposes the engine controller (for tests and tools).
func (s *Server) Controller() *Controller { return s.ctrl }

// Scheduler exposes the scheduler (for tests and tools).
func (s *Server) Scheduler() *Scheduler { return s.sched }

// Topology exposes the GPU topology.
func (s *Server) Topology() *gpu.Topology { return s.topo }

// Driver exposes the GPU checkpoint driver (for tests and tools).
func (s *Server) Driver() *cudackpt.Driver { return s.driver }

// Freezer exposes the cgroup freezer (for tests and tools).
func (s *Server) Freezer() *cgroup.Freezer { return s.freezer }

// Store exposes the model store (for tests and tools).
func (s *Server) Store() *storage.ModelStore { return s.store }

// CkptStore exposes the content-addressed checkpoint store (nil unless
// the deployment enables ckpt_store). The cluster layer uses it to wire
// peer-to-peer chunk fetch across nodes.
func (s *Server) CkptStore() *ckptstore.Store { return s.driver.Store() }

// Backend returns the backend serving the named model.
func (s *Server) Backend(model string) (*Backend, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.backends[model]
	return b, ok
}

// Backends returns all backends sorted by name.
func (s *Server) Backends() []*Backend {
	s.mu.Lock()
	defer s.mu.Unlock()
	names := make([]string, 0, len(s.backends))
	for n := range s.backends {
		names = append(names, n)
	}
	sortStrings(names)
	out := make([]*Backend, len(names))
	for i, n := range names {
		out[i] = s.backends[n]
	}
	return out
}

// Start runs the initialization sequence of §3.2: stage weights, create
// and run one container per configured model, wait for engine
// initialization, snapshot the GPU state, and leave each backend paused
// (unless keep-warm). Then the request handler and router begin serving.
func (s *Server) Start(ctx context.Context) error {
	ctx = s.traceCtx(ctx)
	s.mu.Lock()
	if s.started {
		s.mu.Unlock()
		return fmt.Errorf("core: server already started")
	}
	s.started = true
	s.mu.Unlock()

	catalog := models.Default()

	// Stage model weights into the configured tiers (the model-pull step).
	for _, mc := range s.cfg.Models {
		m := catalog.MustLookup(mc.Name)
		if err := engine.StageWeights(s.store, perfmodel.StorageTier(mc.StorageTier), m); err != nil {
			return fmt.Errorf("core: staging weights for %s: %w", mc.Name, err)
		}
	}

	// Initialize backends sequentially: engines like vLLM claim most of
	// the device during initialization, so concurrent cold starts would
	// spuriously OOM. Each backend is snapshotted and paused before the
	// next begins.
	for i := range s.cfg.Models {
		if err := s.initBackend(ctx, &s.cfg.Models[i]); err != nil {
			return fmt.Errorf("core: initializing %s: %w", s.cfg.Models[i].Name, err)
		}
	}

	// Background loops spawn through the clock's gate so a Virtual clock
	// accounts for them; on Real/Scaled clocks the gate is a plain `go`.
	gate := simclock.GateFor(s.clock)

	// Start the idle reaper when keep-alive is configured, a TTL policy
	// is installed (the policy then owns the eviction choice), or
	// second-level snapshot demotion is enabled.
	if ka := s.cfg.KeepAlive(); ka > 0 || s.ttl != nil || s.cfg.Global.SnapshotDemoteSec > 0 {
		interval := ka / 4
		if interval < time.Second {
			interval = time.Second
		}
		s.reap = newReaper(s, ka, interval)
		gate.Go(s.reap.run)
	}

	// Start the predictive prefetcher when configured.
	if s.cfg.Global.Prefetch {
		s.prefetch = newPrefetcher(s, 250*time.Millisecond)
		gate.Go(s.prefetch.run)
	}

	// Start the continuous GPU monitor when configured (§3.2).
	if sec := s.cfg.Global.GPUMonitorSec; sec > 0 {
		s.gpumon = newGPUMonitorLoop(s, time.Duration(sec*float64(time.Second)))
		gate.Go(s.gpumon.run)
	}

	// Start the router.
	ln, err := net.Listen("tcp", s.cfg.Listen)
	if err != nil {
		return fmt.Errorf("core: listening on %s: %w", s.cfg.Listen, err)
	}
	s.listener = ln
	s.httpServer = &http.Server{Handler: newRouter(s).handler()}
	go s.httpServer.Serve(ln)
	return nil
}

// initBackend creates, starts, initializes, and (by default) snapshots
// one backend.
func (s *Server) initBackend(ctx context.Context, mc *config.Model) error {
	catalog := models.Default()
	m := catalog.MustLookup(mc.Name)
	kind := perfmodel.EngineKind(mc.Engine)
	gpus := normalizeGPUs(mc.GPUs)
	devices := make([]*gpu.Device, len(gpus))
	for i, id := range gpus {
		dev, err := s.topo.Device(id)
		if err != nil {
			return err
		}
		devices[i] = dev
	}

	spec := container.Spec{
		Name:  sanitizeName(mc.Name),
		Image: mc.Image,
		Engine: func(owner string) (engine.Engine, error) {
			return engine.New(kind, engine.Config{
				Owner:                owner,
				Model:                m,
				Testbed:              s.testbed,
				Clock:                s.clock,
				Devices:              devices,
				Store:                s.store,
				Tier:                 perfmodel.StorageTier(mc.StorageTier),
				GPUMemoryUtilization: mc.GPUMemoryUtilization,
				InitCache:            s.initCache,
			})
		},
	}
	ctr, err := s.rt.Create(ctx, spec)
	if err != nil {
		return err
	}
	// Name the process's weight content after the model, so replicas of
	// one model — on this node or a peer — deduplicate weight chunks in
	// the checkpoint store. Harmless without a store attached.
	_ = s.driver.SetContentKey(ctr.ID(), mc.Name)

	b := &Backend{
		name:         mc.Name,
		model:        m,
		engine:       kind,
		gpus:         gpus,
		ctr:          ctr,
		queue:        make(chan *queuedRequest, mc.QueueCapacity),
		useSleepMode: s.cfg.Global.UseSleepMode,
		keepWarm:     mc.KeepWarm,
	}
	b.setState(BackendInitializing)
	b.touch(s.clock.Now())

	s.mu.Lock()
	s.backends[mc.Name] = b
	s.mu.Unlock()
	s.ctrl.RegisterBackend(b)

	if err := s.rt.Start(ctx, ctr); err != nil {
		b.setState(BackendFailed)
		return err
	}
	initCtx := ctx
	if t := mc.InitTimeout(); t > 0 {
		var cancel func()
		initCtx, cancel = contextWithTimeout(ctx, s.toWall(t))
		defer cancel()
	}
	if err := ctr.WaitReady(initCtx); err != nil {
		b.setState(BackendFailed)
		return err
	}
	b.setState(BackendRunning)
	b.lastReady.Store(s.clock.Now().UnixNano())
	b.requiredBytes.Store(ctr.Engine().GPUBytes())

	// Snapshot immediately after initialization and leave the container
	// paused (§3.2), unless the deployment keeps this model warm.
	if !b.keepWarm {
		if err := s.ctrl.SwapOut(ctx, b); err != nil {
			b.setState(BackendFailed)
			return err
		}
	}

	// Start the model worker.
	w := newWorker(b, s.sched, s.clock, s.reg)
	s.mu.Lock()
	s.workers = append(s.workers, w)
	s.mu.Unlock()
	simclock.GateFor(s.clock).Go(w.run)
	return nil
}

// Addr returns the router's listen address (empty before Start).
func (s *Server) Addr() string {
	if s.listener == nil {
		return ""
	}
	return s.listener.Addr().String()
}

// URL returns the router's base URL.
func (s *Server) URL() string { return "http://" + s.Addr() }

// Handler returns the router handler (usable without a listener).
func (s *Server) Handler() http.Handler { return newRouter(s).handler() }

// Shutdown stops the router, the reaper, the workers, and every
// container.
func (s *Server) Shutdown() {
	if s.httpServer != nil {
		s.httpServer.Close()
	}
	if s.reap != nil {
		s.reap.halt()
	}
	if s.prefetch != nil {
		s.prefetch.halt()
	}
	if s.gpumon != nil {
		s.gpumon.halt()
	}
	s.mu.Lock()
	workers := s.workers
	s.workers = nil
	s.mu.Unlock()
	for _, w := range workers {
		close(w.stop)
	}
	// Wait for the dispatch loops to exit so no registered goroutine of
	// this server outlives Shutdown — experiments that run several
	// servers against one shared Virtual clock depend on a clean slate
	// between trials. The wait needs no clock advance (a closed stop
	// channel makes every loop immediately runnable), but the receive
	// still parks this goroutine, so shed the run token while draining.
	simclock.GateFor(s.clock).Block(func() {
		for _, w := range workers {
			<-w.done
		}
	})
	s.rt.Shutdown()
}

// toWall converts a simulated duration to wall time using the clock's
// scale (identity for unscaled clocks).
func (s *Server) toWall(d time.Duration) time.Duration {
	if sc, ok := s.clock.(*simclock.Scaled); ok {
		return time.Duration(float64(d) / sc.Scale())
	}
	return d
}

// contextWithTimeout is context.WithTimeout, indirected for clarity at
// call sites that mix simulated and wall durations.
func contextWithTimeout(parent context.Context, d time.Duration) (context.Context, context.CancelFunc) {
	return context.WithTimeout(parent, d)
}

// sanitizeName converts a model name into a container-safe name.
func sanitizeName(model string) string {
	out := make([]rune, 0, len(model))
	for _, r := range model {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_', r == '.':
			out = append(out, r)
		default:
			out = append(out, '-')
		}
	}
	return string(out)
}

// sortStrings is a tiny local sort to avoid importing sort twice across
// files (kept for readability).
func sortStrings(ss []string) {
	for i := 1; i < len(ss); i++ {
		for j := i; j > 0 && ss[j] < ss[j-1]; j-- {
			ss[j], ss[j-1] = ss[j-1], ss[j]
		}
	}
}
