package core

import (
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"swapservellm/internal/config"
	"swapservellm/internal/openai"
	"swapservellm/internal/simclock"
)

// testServer builds and starts a server from the given model configs.
func testServer(t *testing.T, scale float64, models ...config.Model) *Server {
	t.Helper()
	cfg := config.Default()
	cfg.Models = models
	s, err := New(cfg, Options{
		Clock: simclock.NewScaled(testEpoch, scale),
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	if err := s.Start(ctx); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Shutdown)
	return s
}

func ollamaModel(name string) config.Model {
	return config.Model{Name: name, Engine: "ollama"}
}

func vllmModel(name string) config.Model {
	return config.Model{Name: name, Engine: "vllm"}
}

func doChat(t *testing.T, url, model string, maxTokens int) *openai.ChatCompletionResponse {
	t.Helper()
	seed := int64(7)
	temp := 0.0
	resp, err := openai.NewClient(url).ChatCompletion(context.Background(), &openai.ChatCompletionRequest{
		Model:       model,
		Messages:    []openai.Message{{Role: "user", Content: "hello from the test"}},
		Seed:        &seed,
		Temperature: &temp,
		MaxTokens:   maxTokens,
	})
	if err != nil {
		t.Fatalf("chat against %s: %v", model, err)
	}
	return resp
}

func TestServerInitSnapshotsAndPauses(t *testing.T) {
	// §3.2: after initialization every backend is snapshotted and paused,
	// leaving the GPU empty.
	s := testServer(t, 5000, ollamaModel("llama3.2:1b-fp16"), ollamaModel("deepseek-r1:1.5b-q4"))
	for _, b := range s.Backends() {
		if b.State() != BackendSwappedOut {
			t.Errorf("backend %s state = %v, want swapped-out", b.Name(), b.State())
		}
		if b.RequiredBytes() <= 0 {
			t.Errorf("backend %s has no recorded footprint", b.Name())
		}
	}
	dev, _ := s.Topology().Device(0)
	if dev.Used() != 0 {
		t.Fatalf("GPU not empty after init snapshots: %d bytes", dev.Used())
	}
	// Snapshots live in host memory.
	if s.driver.HostUsed() == 0 {
		t.Fatal("no host snapshot memory in use")
	}
}

func TestServerKeepWarm(t *testing.T) {
	m := ollamaModel("llama3.2:1b-fp16")
	m.KeepWarm = true
	s := testServer(t, 5000, m)
	b, _ := s.Backend("llama3.2:1b-fp16")
	if b.State() != BackendRunning {
		t.Fatalf("keep-warm backend state = %v", b.State())
	}
}

func TestRequestTriggersSwapIn(t *testing.T) {
	// §3.3: a request for a swapped-out model triggers the full swap-in
	// path and is then served.
	s := testServer(t, 5000, ollamaModel("llama3.2:1b-fp16"))
	b, _ := s.Backend("llama3.2:1b-fp16")
	if b.State() != BackendSwappedOut {
		t.Fatalf("precondition: state = %v", b.State())
	}
	resp := doChat(t, s.URL(), "llama3.2:1b-fp16", 4)
	if resp.Usage.CompletionTokens != 4 {
		t.Fatalf("usage = %+v", resp.Usage)
	}
	if b.State() != BackendRunning {
		t.Fatalf("state after request = %v", b.State())
	}
	in, _ := b.SwapCounts()
	if in != 1 {
		t.Fatalf("swap-ins = %d, want 1", in)
	}
	// A second request hits the running backend with no further swap.
	doChat(t, s.URL(), "llama3.2:1b-fp16", 4)
	if in2, _ := b.SwapCounts(); in2 != 1 {
		t.Fatalf("second request re-swapped: %d", in2)
	}
}

func TestSwapInLatencyFasterThanColdStart(t *testing.T) {
	// The headline claim end-to-end: serving a swapped-out model costs a
	// swap-in (~1s for a 1B Ollama model) rather than a cold start.
	// A modest scale keeps wall-clock overhead (HTTP hops) from inflating
	// the simulated measurement.
	s := testServer(t, 200, ollamaModel("llama3.2:1b-fp16"))
	clock := s.Clock()
	t0 := clock.Now()
	doChat(t, s.URL(), "llama3.2:1b-fp16", 1)
	elapsed := clock.Since(t0)
	// Swap-in ≈0.76s + decode; cold start would be ≈2s (Ollama) or ≈87s
	// (vLLM). Generous bound: must be well under the Ollama cold start.
	if elapsed > 1900*time.Millisecond {
		t.Fatalf("first-request latency %v, want < 1.9s (cold start territory)", elapsed)
	}
}

func TestPreemptionUnderMemoryPressure(t *testing.T) {
	// Two vLLM backends each demand 90% of the GPU: serving model B must
	// preempt model A, and vice versa.
	s := testServer(t, 20000, vllmModel("llama3.2:1b-fp16"), vllmModel("llama3.2:3b-fp16"))
	a, _ := s.Backend("llama3.2:1b-fp16")
	bb, _ := s.Backend("llama3.2:3b-fp16")

	doChat(t, s.URL(), "llama3.2:1b-fp16", 2)
	if a.State() != BackendRunning {
		t.Fatalf("A state = %v", a.State())
	}
	doChat(t, s.URL(), "llama3.2:3b-fp16", 2)
	if bb.State() != BackendRunning {
		t.Fatalf("B state = %v", bb.State())
	}
	// B's swap-in must have evicted A.
	if a.State() != BackendSwappedOut {
		t.Fatalf("A state after B served = %v, want swapped-out", a.State())
	}
	_, aOuts := a.SwapCounts()
	if aOuts < 2 { // once at init, once preempted
		t.Fatalf("A swap-outs = %d, want >= 2", aOuts)
	}
	// And A can come back.
	doChat(t, s.URL(), "llama3.2:1b-fp16", 2)
	if a.State() != BackendRunning || bb.State() != BackendSwappedOut {
		t.Fatalf("states after A re-served: A=%v B=%v", a.State(), bb.State())
	}
}

func TestPaperScenario34(t *testing.T) {
	// §3.4: Gemma 7B and DeepSeek Coder 6.7B fit together on the 80 GB
	// GPU; a subsequent LLaMA 3.3 70B FP8 request must swap both out.
	s := testServer(t, 20000,
		ollamaModel("gemma:7b-fp16"),
		ollamaModel("deepseek-coder:6.7b-fp16"),
		ollamaModel("llama3.3:70b-fp8"),
	)
	gemma, _ := s.Backend("gemma:7b-fp16")
	coder, _ := s.Backend("deepseek-coder:6.7b-fp16")
	big, _ := s.Backend("llama3.3:70b-fp8")

	// Both small models swap in concurrently.
	var wg sync.WaitGroup
	for _, m := range []string{"gemma:7b-fp16", "deepseek-coder:6.7b-fp16"} {
		wg.Add(1)
		go func(m string) {
			defer wg.Done()
			doChat(t, s.URL(), m, 2)
		}(m)
	}
	wg.Wait()
	if gemma.State() != BackendRunning || coder.State() != BackendRunning {
		t.Fatalf("small models not co-resident: gemma=%v coder=%v", gemma.State(), coder.State())
	}

	// The 70B model displaces both.
	doChat(t, s.URL(), "llama3.3:70b-fp8", 2)
	if big.State() != BackendRunning {
		t.Fatalf("70B state = %v", big.State())
	}
	if gemma.State() != BackendSwappedOut || coder.State() != BackendSwappedOut {
		t.Fatalf("small models not preempted: gemma=%v coder=%v", gemma.State(), coder.State())
	}
}

func TestUnknownModel404(t *testing.T) {
	s := testServer(t, 5000, ollamaModel("llama3.2:1b-fp16"))
	seed := int64(1)
	_, err := openai.NewClient(s.URL()).ChatCompletion(context.Background(), &openai.ChatCompletionRequest{
		Model:    "gpt-42",
		Messages: []openai.Message{{Role: "user", Content: "x"}},
		Seed:     &seed,
	})
	apiErr, ok := err.(*openai.APIError)
	if !ok || !strings.Contains(apiErr.Message, "not configured") {
		t.Fatalf("err = %v", err)
	}
}

func TestRouterValidation(t *testing.T) {
	s := testServer(t, 5000, ollamaModel("llama3.2:1b-fp16"))
	// Malformed JSON.
	resp, err := http.Post(s.URL()+"/v1/chat/completions", "application/json", strings.NewReader("{"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Fatalf("malformed JSON status = %d", resp.StatusCode)
	}
	// Missing messages.
	resp, err = http.Post(s.URL()+"/v1/chat/completions", "application/json",
		strings.NewReader(`{"model":"llama3.2:1b-fp16"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Fatalf("empty messages status = %d", resp.StatusCode)
	}
	// GET on completions.
	resp, err = http.Get(s.URL() + "/v1/chat/completions")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 405 {
		t.Fatalf("GET status = %d", resp.StatusCode)
	}
}

func TestListModelsEndpoint(t *testing.T) {
	s := testServer(t, 5000, ollamaModel("llama3.2:1b-fp16"), ollamaModel("deepseek-r1:1.5b-q4"))
	list, err := openai.NewClient(s.URL()).ListModels(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(list.Data) != 2 {
		t.Fatalf("models = %+v", list.Data)
	}
	if list.Data[0].ID != "deepseek-r1:1.5b-q4" || list.Data[1].ID != "llama3.2:1b-fp16" {
		t.Fatalf("model ids = %v, %v", list.Data[0].ID, list.Data[1].ID)
	}
}

func TestStreamingThroughRouter(t *testing.T) {
	s := testServer(t, 5000, ollamaModel("llama3.2:1b-fp16"))
	seed := int64(3)
	var tokens []string
	err := openai.NewClient(s.URL()).ChatCompletionStream(context.Background(),
		&openai.ChatCompletionRequest{
			Model:     "llama3.2:1b-fp16",
			Messages:  []openai.Message{{Role: "user", Content: "stream through proxy"}},
			Seed:      &seed,
			MaxTokens: 6,
		},
		func(c *openai.ChatCompletionChunk) error {
			if len(c.Choices) > 0 && c.Choices[0].Delta.Content != "" {
				tokens = append(tokens, c.Choices[0].Delta.Content)
			}
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if len(tokens) != 6 {
		t.Fatalf("streamed %d tokens, want 6", len(tokens))
	}
}

func TestAdminStatusAndSwap(t *testing.T) {
	s := testServer(t, 5000, ollamaModel("llama3.2:1b-fp16"))
	b, _ := s.Backend("llama3.2:1b-fp16")

	// Explicit swap-in via the admin API.
	resp, err := http.Post(s.URL()+"/admin/swap-in?model=llama3.2:1b-fp16", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("swap-in status = %d", resp.StatusCode)
	}
	if b.State() != BackendRunning {
		t.Fatalf("state = %v", b.State())
	}

	// Status reflects it.
	resp, err = http.Get(s.URL() + "/admin/status")
	if err != nil {
		t.Fatal(err)
	}
	var status struct {
		Backends []BackendStatus `json:"backends"`
		GPUs     []struct {
			UsedGiB float64 `json:"used_gib"`
		} `json:"gpus"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&status); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(status.Backends) != 1 || status.Backends[0].State != "running" {
		t.Fatalf("status = %+v", status)
	}
	if len(status.GPUs) != 1 || status.GPUs[0].UsedGiB <= 0 {
		t.Fatalf("gpu status = %+v", status.GPUs)
	}

	// Explicit swap-out.
	resp, err = http.Post(s.URL()+"/admin/swap-out?model=llama3.2:1b-fp16", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("swap-out status = %d", resp.StatusCode)
	}
	if b.State() != BackendSwappedOut {
		t.Fatalf("state = %v", b.State())
	}

	// Unknown model.
	resp, _ = http.Post(s.URL()+"/admin/swap-in?model=nope", "", nil)
	resp.Body.Close()
	if resp.StatusCode != 404 {
		t.Fatalf("unknown model swap status = %d", resp.StatusCode)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	s := testServer(t, 5000, ollamaModel("llama3.2:1b-fp16"))
	doChat(t, s.URL(), "llama3.2:1b-fp16", 2)
	resp, err := http.Get(s.URL() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sb strings.Builder
	buf := make([]byte, 4096)
	for {
		n, err := resp.Body.Read(buf)
		sb.Write(buf[:n])
		if err != nil {
			break
		}
	}
	out := sb.String()
	for _, want := range []string{"requests_total", "swap_in_latency", "swap_outs", "# TYPE"} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics output missing %q", want)
		}
	}

	// The CSV exposition remains available at /metrics.csv.
	csvResp, err := http.Get(s.URL() + "/metrics.csv")
	if err != nil {
		t.Fatal(err)
	}
	defer csvResp.Body.Close()
	head := make([]byte, 64)
	n, _ := csvResp.Body.Read(head)
	if !strings.HasPrefix(string(head[:n]), "kind,name,field,value") {
		t.Errorf("/metrics.csv header = %q", head[:n])
	}
}

func TestAuthToken(t *testing.T) {
	cfg := config.Default()
	cfg.Global.AuthToken = "secret-token"
	cfg.Models = []config.Model{ollamaModel("llama3.2:1b-fp16")}
	s, err := New(cfg, Options{Clock: simclock.NewScaled(testEpoch, 5000)})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer s.Shutdown()

	// Without the token: 401.
	resp, err := http.Get(s.URL() + "/v1/models")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 401 {
		t.Fatalf("unauthenticated status = %d", resp.StatusCode)
	}
	// With it: 200.
	req, _ := http.NewRequest(http.MethodGet, s.URL()+"/v1/models", nil)
	req.Header.Set("Authorization", "Bearer secret-token")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("authenticated status = %d", resp.StatusCode)
	}
}

func TestQueueFull429(t *testing.T) {
	cfg := config.Default()
	cfg.Global.QueueCapacity = 1
	cfg.Models = []config.Model{ollamaModel("llama3.2:1b-fp16")}
	s, err := New(cfg, Options{Clock: simclock.NewScaled(testEpoch, 2000)})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer s.Shutdown()

	// Flood with concurrent requests; with queue depth 1 and a multi-second
	// swap-in, some must be rejected with 429.
	var wg sync.WaitGroup
	var got429 bool
	var mu sync.Mutex
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			seed := int64(1)
			body := openai.MarshalJSONString(openai.ChatCompletionRequest{
				Model:     "llama3.2:1b-fp16",
				Messages:  []openai.Message{{Role: "user", Content: "x"}},
				Seed:      &seed,
				MaxTokens: 2,
			})
			resp, err := http.Post(s.URL()+"/v1/chat/completions", "application/json", strings.NewReader(body))
			if err != nil {
				return
			}
			resp.Body.Close()
			if resp.StatusCode == http.StatusTooManyRequests {
				mu.Lock()
				got429 = true
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if !got429 {
		t.Fatal("no request was rejected with 429 despite queue depth 1")
	}
}

func TestServerDoubleStart(t *testing.T) {
	s := testServer(t, 5000, ollamaModel("llama3.2:1b-fp16"))
	if err := s.Start(context.Background()); err == nil {
		t.Fatal("second Start accepted")
	}
}

func TestServerBadConfig(t *testing.T) {
	cfg := config.Default()
	cfg.Models = []config.Model{{Name: "unknown:model", Engine: "vllm"}}
	if _, err := New(cfg, Options{}); err == nil {
		t.Fatal("unknown model accepted")
	}
	cfg = config.Default()
	if _, err := New(cfg, Options{}); err == nil {
		t.Fatal("empty model list accepted")
	}
}

func TestVLLMSleepModeSwapPath(t *testing.T) {
	// With sleep mode enabled, the vLLM swap-out shrinks the snapshot to
	// the residual footprint instead of the full 72 GiB pool.
	cfg := config.Default()
	cfg.Global.UseSleepMode = true
	cfg.Models = []config.Model{vllmModel("llama3.2:1b-fp16")}
	s, err := New(cfg, Options{Clock: simclock.NewScaled(testEpoch, 20000)})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer s.Shutdown()

	b, _ := s.Backend("llama3.2:1b-fp16")
	if b.State() != BackendSwappedOut {
		t.Fatalf("state = %v", b.State())
	}
	// The snapshot is tiny: residual CUDA context only.
	img, err := s.driver.ImageBytes(b.Container().ID())
	if err != nil {
		t.Fatal(err)
	}
	if img > 2*gib {
		t.Fatalf("sleep-mode snapshot = %d bytes, want < 2 GiB", img)
	}
	// But the recorded requirement covers the full wake footprint.
	if b.RequiredBytes() < 70*gib {
		t.Fatalf("required bytes = %d, want ~72 GiB", b.RequiredBytes())
	}
	// And the backend serves correctly after swap-in.
	resp := doChat(t, s.URL(), "llama3.2:1b-fp16", 2)
	if resp.Usage.CompletionTokens != 2 {
		t.Fatalf("usage = %+v", resp.Usage)
	}
	if got := b.Container().Engine().GPUBytes(); got < 70*gib {
		t.Fatalf("engine footprint after wake = %d", got)
	}
}

func TestConcurrentRequestsSameModel(t *testing.T) {
	s := testServer(t, 5000, ollamaModel("llama3.2:1b-fp16"))
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			seed := int64(1)
			_, err := openai.NewClient(s.URL()).ChatCompletion(context.Background(), &openai.ChatCompletionRequest{
				Model:     "llama3.2:1b-fp16",
				Messages:  []openai.Message{{Role: "user", Content: "concurrent"}},
				Seed:      &seed,
				MaxTokens: 3,
			})
			if err != nil {
				errs <- err
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Errorf("concurrent request: %v", err)
	}
	// Exactly one swap-in should have served all eight.
	b, _ := s.Backend("llama3.2:1b-fp16")
	if in, _ := b.SwapCounts(); in != 1 {
		t.Fatalf("swap-ins = %d, want 1", in)
	}
}
