package core

import (
	"context"
	"testing"
	"time"

	"swapservellm/internal/config"
	"swapservellm/internal/simclock"
)

// The reaper and the prefetcher form an autoscaling pair working in
// opposite directions: the reaper reclaims memory behind idle backends,
// the prefetcher restores them ahead of predicted demand. These tests
// pin down their interaction — neither may immediately undo the other's
// work. Both loops are driven by explicit sweep() calls (the config
// leaves the background loops disabled) so the interleavings are exact.

// prefetchSetup starts a one-model server with both loops disabled and
// primes the backend's EWMA demand predictor with chats spaced gapMS
// wall-milliseconds apart (gapMS simulated seconds at scale 1000).
func prefetchSetup(t *testing.T, gapMS int) (*Server, *Backend) {
	t.Helper()
	cfg := config.Default()
	cfg.Models = []config.Model{ollamaModel("llama3.2:1b-fp16")}
	s := startServer(t, cfg, Options{Clock: simclock.NewScaled(testEpoch, 1000)})
	b, _ := s.Backend("llama3.2:1b-fp16")
	for i := 0; i < 4; i++ {
		doChat(t, s.URL(), "llama3.2:1b-fp16", 1)
		time.Sleep(time.Duration(gapMS) * time.Millisecond)
	}
	if b.ewmaInterArrival.Load() <= 0 {
		t.Fatal("EWMA predictor not primed")
	}
	return s, b
}

// TestReaperSparesPrefetchedBackend: a proactive prefetch swap-in resets
// the backend's idle clock. Even when the last request arrival is well
// outside the keep-alive window, the reaper must not reclaim a backend
// the prefetcher just restored — idle time runs from the moment it last
// became servable, not from the last request.
func TestReaperSparesPrefetchedBackend(t *testing.T) {
	// ~12 simulated seconds between arrivals; keep-alive is 6, so by the
	// time the prefetcher fires (one EWMA period after the last arrival)
	// the last access is already older than the keep-alive window.
	s, b := prefetchSetup(t, 12)
	if err := s.Controller().SwapOut(context.Background(), b); err != nil {
		t.Fatal(err)
	}

	p := newPrefetcher(s, time.Hour)
	deadline := time.Now().Add(10 * time.Second)
	for b.State() != BackendRunning {
		if time.Now().After(deadline) {
			t.Fatalf("prefetcher never restored the backend (state=%v, ewma=%v)",
				b.State(), time.Duration(b.ewmaInterArrival.Load()))
		}
		p.sweep()
		time.Sleep(time.Millisecond)
	}
	if s.Registry().Counter("prefetch_swap_ins").Value() == 0 {
		t.Fatal("prefetch_swap_ins not incremented")
	}

	// The last arrival is now >= one EWMA period (~12 simulated seconds)
	// in the past — outside the 6-second keep-alive window. A reap sweep
	// right after the prefetch must leave the backend alone.
	r := newReaper(s, 6*time.Second, time.Hour)
	if idle := s.clock.Now().Sub(b.LastAccessed()); idle < 6*time.Second {
		t.Fatalf("test premise broken: last access only %v ago", idle)
	}
	r.sweep()
	if b.State() != BackendRunning {
		t.Fatal("reaper reclaimed a freshly prefetched backend")
	}
	if v := s.Registry().Counter("idle_reaps").Value(); v != 0 {
		t.Fatalf("idle_reaps = %v after prefetch", v)
	}

	// The guard is a grace period, not an exemption: once the backend has
	// been servable-but-unused for a full keep-alive window, the reaper
	// reclaims it as usual.
	time.Sleep(10 * time.Millisecond) // ~10 simulated seconds
	r.sweep()
	if b.State() != BackendSwappedOut {
		t.Fatalf("reaper never reclaimed the idle prefetched backend (state=%v)", b.State())
	}
	if v := s.Registry().Counter("idle_reaps").Value(); v != 1 {
		t.Fatalf("idle_reaps = %v, want 1", v)
	}
}

// TestPrefetcherSkipsFreshlyReapedBackend: the inverse interaction. A
// backend reaped for genuine idleness — traffic stopped long enough that
// the predicted next arrival is stale — must not be prefetched straight
// back in, or the pair would thrash swap-out/swap-in forever.
func TestPrefetcherSkipsFreshlyReapedBackend(t *testing.T) {
	// ~6 simulated seconds between arrivals, then silence.
	s, b := prefetchSetup(t, 6)

	// Let the trace go cold: ~24 simulated seconds with no arrivals puts
	// the predicted next arrival more than one EWMA period in the past.
	time.Sleep(24 * time.Millisecond)

	r := newReaper(s, 5*time.Second, time.Hour)
	r.sweep()
	if b.State() != BackendSwappedOut {
		t.Fatalf("reaper did not reclaim the idle backend (state=%v)", b.State())
	}

	// Repeated prefetch sweeps must leave the reaped backend swapped out.
	p := newPrefetcher(s, time.Hour)
	for i := 0; i < 5; i++ {
		p.sweep()
		time.Sleep(time.Millisecond)
	}
	if b.State() != BackendSwappedOut {
		t.Fatalf("prefetcher restored a backend with no predicted demand (state=%v)", b.State())
	}
	if v := s.Registry().Counter("prefetch_swap_ins").Value(); v != 0 {
		t.Fatalf("prefetch_swap_ins = %v after cold reap", v)
	}

	// The predictor re-arms when traffic resumes: two fresh arrivals
	// rebuild the EWMA and the next quiet gap is prefetched again.
	doChat(t, s.URL(), "llama3.2:1b-fp16", 1)
	time.Sleep(6 * time.Millisecond)
	doChat(t, s.URL(), "llama3.2:1b-fp16", 1)
	if err := s.Controller().SwapOut(context.Background(), b); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for s.Registry().Counter("prefetch_swap_ins").Value() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("prefetcher never re-armed after traffic resumed")
		}
		p.sweep()
		time.Sleep(time.Millisecond)
	}
}
