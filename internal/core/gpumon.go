package core

import (
	"fmt"
	"sync"
	"time"

	"swapservellm/internal/simclock"
)

// gpuMonitorLoop is the continuous GPU monitoring of §3.2: the server
// samples every device's memory and compute utilization on a fixed
// simulated period and records the series in the metrics registry
// (gpu<N>_used_gib, gpu<N>_utilization) — the data behind a Figure 3
// style analysis of a live deployment.
type gpuMonitorLoop struct {
	s        *Server
	interval time.Duration

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// newGPUMonitorLoop builds a monitor sampling every interval of simulated
// time.
func newGPUMonitorLoop(s *Server, interval time.Duration) *gpuMonitorLoop {
	return &gpuMonitorLoop{
		s:        s,
		interval: interval,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
}

// run is the sampling loop; terminate with halt.
func (m *gpuMonitorLoop) run() {
	defer close(m.done)
	gate := simclock.GateFor(m.s.clock)
	for gate.Wait(m.interval, m.stop) < 0 {
		now := m.s.clock.Now()
		for _, st := range m.s.tm.Monitor().Sample() {
			m.s.reg.Series(fmt.Sprintf("gpu%d_used_gib", st.ID)).
				Append(now, float64(st.UsedBytes)/(1<<30))
			m.s.reg.Series(fmt.Sprintf("gpu%d_utilization", st.ID)).
				Append(now, st.Utilization)
		}
	}
}

// halt stops the monitor and waits for the loop to exit, shedding the
// run token while the loop goroutine drains.
func (m *gpuMonitorLoop) halt() {
	m.stopOnce.Do(func() { close(m.stop) })
	simclock.GateFor(m.s.clock).Block(func() { <-m.done })
}
