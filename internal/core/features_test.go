package core

import (
	"context"
	"strings"
	"testing"
	"time"

	"swapservellm/internal/config"
	"swapservellm/internal/cudackpt"
	"swapservellm/internal/openai"
	"swapservellm/internal/simclock"
)

// startServer builds and starts a server from a full config.
func startServer(t *testing.T, cfg config.Config, opts Options) *Server {
	t.Helper()
	if opts.Clock == nil {
		opts.Clock = simclock.NewScaled(testEpoch, 2000)
	}
	s, err := New(cfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Shutdown)
	return s
}

func TestIdleReaperSwapsOutIdleBackend(t *testing.T) {
	cfg := config.Default()
	cfg.Global.KeepAliveSec = 5 // short keep-alive in simulated time
	cfg.Models = []config.Model{ollamaModel("llama3.2:1b-fp16")}
	s := startServer(t, cfg, Options{Clock: simclock.NewScaled(testEpoch, 2000)})

	b, _ := s.Backend("llama3.2:1b-fp16")
	doChat(t, s.URL(), "llama3.2:1b-fp16", 2)

	// Wait past the keep-alive window (simulated): the reaper must evict.
	deadline := time.Now().Add(5 * time.Second)
	for b.State() != BackendSwappedOut {
		if time.Now().After(deadline) {
			t.Fatalf("reaper never swapped out the idle backend (state=%v)", b.State())
		}
		time.Sleep(2 * time.Millisecond)
	}
	if s.Registry().Counter("idle_reaps").Value() == 0 {
		t.Fatal("idle_reaps counter not incremented")
	}
	// The backend still serves after a reap (it may be re-reaped again
	// once idle, so only the successful response is asserted).
	doChat(t, s.URL(), "llama3.2:1b-fp16", 2)
	if in, _ := b.SwapCounts(); in < 2 {
		t.Fatalf("swap-ins = %d, want >= 2 (one per served burst)", in)
	}
}

func TestReaperSkipsKeepWarm(t *testing.T) {
	cfg := config.Default()
	cfg.Global.KeepAliveSec = 2
	m := ollamaModel("llama3.2:1b-fp16")
	m.KeepWarm = true
	cfg.Models = []config.Model{m}
	s := startServer(t, cfg, Options{Clock: simclock.NewScaled(testEpoch, 2000)})
	b, _ := s.Backend("llama3.2:1b-fp16")
	// Give the reaper several sweep windows (simulated seconds are ms here).
	time.Sleep(30 * time.Millisecond)
	if b.State() != BackendRunning {
		t.Fatalf("keep-warm backend was reaped: %v", b.State())
	}
}

func TestReaperSkipsBusyBackend(t *testing.T) {
	// The 14B model decodes at ~25 tokens/s, so a 255-token stream spans
	// ~10 simulated seconds — several keep-alive windows.
	cfg := config.Default()
	cfg.Global.KeepAliveSec = 2
	cfg.Models = []config.Model{ollamaModel("deepseek-r1:14b-fp16")}
	s := startServer(t, cfg, Options{Clock: simclock.NewScaled(testEpoch, 2000)})
	b, _ := s.Backend("deepseek-r1:14b-fp16")

	// The reaper must never evict mid-stream: a mid-generation eviction
	// would force a second swap-in before the stream could finish, so a
	// complete stream with exactly one swap-in proves the stream was
	// never interrupted. (Client-side state checks are invalid here: the
	// simulated decode finishes long before the client drains the socket
	// buffers, so a post-completion reap can legitimately be visible
	// while chunks are still being parsed.)
	seed := int64(1)
	var chunks int
	err := openai.NewClient(s.URL()).ChatCompletionStream(context.Background(),
		&openai.ChatCompletionRequest{
			Model:     "deepseek-r1:14b-fp16",
			Messages:  []openai.Message{{Role: "user", Content: "long"}},
			Seed:      &seed,
			MinTokens: 255,
			MaxTokens: 255,
		}, func(*openai.ChatCompletionChunk) error {
			chunks++
			return nil
		})
	if err != nil {
		t.Fatalf("stream failed: %v", err)
	}
	if chunks < 255 {
		t.Fatalf("stream delivered %d chunks", chunks)
	}
	in, _ := b.SwapCounts()
	if in != 1 {
		t.Fatalf("swap-ins = %d: the stream was interrupted by an eviction", in)
	}
}

func TestCompletionsEndpoint(t *testing.T) {
	s := testServer(t, 5000, ollamaModel("llama3.2:1b-fp16"))
	seed := int64(11)
	resp, err := openai.NewClient(s.URL()).Completion(context.Background(), &openai.CompletionRequest{
		Model:     "llama3.2:1b-fp16",
		Prompt:    openai.PromptField{"Once upon a time"},
		MaxTokens: 6,
		Seed:      &seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Object != "text_completion" || len(resp.Choices) != 1 {
		t.Fatalf("resp = %+v", resp)
	}
	if resp.Choices[0].Text == "" || resp.Usage.CompletionTokens != 6 {
		t.Fatalf("choice = %+v usage = %+v", resp.Choices[0], resp.Usage)
	}
	// The swap-in was triggered through the completions path.
	b, _ := s.Backend("llama3.2:1b-fp16")
	if in, _ := b.SwapCounts(); in != 1 {
		t.Fatalf("swap-ins = %d", in)
	}
}

func TestCompletionsMultiPrompt(t *testing.T) {
	s := testServer(t, 5000, ollamaModel("llama3.2:1b-fp16"))
	seed := int64(2)
	resp, err := openai.NewClient(s.URL()).Completion(context.Background(), &openai.CompletionRequest{
		Model:     "llama3.2:1b-fp16",
		Prompt:    openai.PromptField{"first prompt", "second prompt"},
		MaxTokens: 3,
		Seed:      &seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Choices) != 2 || resp.Choices[1].Index != 1 {
		t.Fatalf("choices = %+v", resp.Choices)
	}
	if resp.Usage.CompletionTokens != 6 {
		t.Fatalf("usage = %+v", resp.Usage)
	}
	if resp.Choices[0].Text == resp.Choices[1].Text {
		t.Fatal("different prompts gave identical completions")
	}
}

func TestCompletionsValidation(t *testing.T) {
	s := testServer(t, 5000, ollamaModel("llama3.2:1b-fp16"))
	_, err := openai.NewClient(s.URL()).Completion(context.Background(), &openai.CompletionRequest{
		Model: "llama3.2:1b-fp16",
	})
	if err == nil || !strings.Contains(err.Error(), "prompt") {
		t.Fatalf("empty prompt: %v", err)
	}
}

func TestSnapshotSpillToDisk(t *testing.T) {
	// Host RAM holds one ~31 GiB snapshot but not two: checkpointing the
	// second must spill the first to disk; restoring the spilled one pays
	// the disk read but still works end-to-end.
	cfg := config.Default()
	cfg.Global.SnapshotHostCapGiB = 40
	cfg.Global.SnapshotSpill = true
	cfg.Models = []config.Model{
		ollamaModel("deepseek-r1:14b-fp16"), // ~31 GiB snapshot
		ollamaModel("llama3.1:8b-fp16"),     // ~17.5 GiB snapshot
	}
	s := startServer(t, cfg, Options{Clock: simclock.NewScaled(testEpoch, 5000)})

	a, _ := s.Backend("deepseek-r1:14b-fp16")
	bb, _ := s.Backend("llama3.1:8b-fp16")
	if a.State() != BackendSwappedOut || bb.State() != BackendSwappedOut {
		t.Fatalf("states: %v %v", a.State(), bb.State())
	}
	// Both snapshots exist; one must have been spilled to disk.
	if s.driver.SpillCount() == 0 {
		t.Fatal("no snapshot was spilled despite the 40 GiB cap")
	}
	if s.driver.DiskUsed() == 0 {
		t.Fatal("disk tier holds no snapshot bytes")
	}
	locA, _ := s.driver.ImageLocation(a.Container().ID())
	if locA != cudackpt.LocDisk {
		t.Fatalf("expected the first (LRU) snapshot on disk, got %v", locA)
	}

	// Restoring the disk-resident snapshot works and costs more than the
	// RAM-resident one.
	clock := s.Clock()
	t0 := clock.Now()
	doChat(t, s.URL(), "deepseek-r1:14b-fp16", 1)
	diskRestore := clock.Since(t0)
	if a.State() != BackendRunning {
		t.Fatalf("state = %v", a.State())
	}
	t1 := clock.Now()
	doChat(t, s.URL(), "llama3.1:8b-fp16", 1)
	ramRestore := clock.Since(t1)
	// 14B from disk ≈ 31 GiB read at ~6-9 GiB/s + restore vs 8B from RAM.
	if diskRestore <= ramRestore {
		t.Fatalf("disk restore %v not slower than RAM restore %v", diskRestore, ramRestore)
	}
}

func TestSnapshotCapWithoutSpillFails(t *testing.T) {
	// Without spilling, the second snapshot must fail the init sequence.
	cfg := config.Default()
	cfg.Global.SnapshotHostCapGiB = 40
	cfg.Models = []config.Model{
		ollamaModel("deepseek-r1:14b-fp16"),
		ollamaModel("llama3.1:8b-fp16"),
	}
	s, err := New(cfg, Options{Clock: simclock.NewScaled(testEpoch, 5000)})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Shutdown()
	if err := s.Start(context.Background()); err == nil {
		t.Fatal("init succeeded despite host snapshot cap without spill")
	}
}

func TestPrefetcherHidesSwapIn(t *testing.T) {
	cfg := config.Default()
	cfg.Global.Prefetch = true
	cfg.Global.KeepAliveSec = 2 // reap quickly so the cycle repeats
	cfg.Models = []config.Model{ollamaModel("llama3.2:1b-fp16")}
	s := startServer(t, cfg, Options{Clock: simclock.NewScaled(testEpoch, 1000)})
	b, _ := s.Backend("llama3.2:1b-fp16")

	// Periodic traffic: one request every ~8 simulated seconds (8ms wall).
	// After a few arrivals the EWMA converges and the prefetcher should
	// swap the backend in before the next request.
	for i := 0; i < 8; i++ {
		doChat(t, s.URL(), "llama3.2:1b-fp16", 1)
		time.Sleep(8 * time.Millisecond)
	}
	if v := s.Registry().Counter("prefetch_swap_ins").Value(); v == 0 {
		t.Fatal("prefetcher never triggered a proactive swap-in")
	}
	_ = b
}

func TestGPUMonitorRecordsSeries(t *testing.T) {
	cfg := config.Default()
	cfg.Global.GPUMonitorSec = 2
	cfg.Models = []config.Model{ollamaModel("llama3.2:1b-fp16")}
	s := startServer(t, cfg, Options{Clock: simclock.NewScaled(testEpoch, 2000)})
	doChat(t, s.URL(), "llama3.2:1b-fp16", 2)
	// Let a few simulated sampling periods elapse (2s sim = 1ms wall).
	deadline := time.Now().Add(3 * time.Second)
	for s.Registry().Series("gpu0_used_gib").Len() < 3 {
		if time.Now().After(deadline) {
			t.Fatal("GPU monitor recorded no samples")
		}
		time.Sleep(2 * time.Millisecond)
	}
	// At least one sample shows the resident backend's memory.
	var sawMemory bool
	for _, p := range s.Registry().Series("gpu0_used_gib").Points() {
		if p.V > 3 {
			sawMemory = true
			break
		}
	}
	if !sawMemory {
		t.Fatal("monitor never observed the resident backend's memory")
	}
	if s.Registry().Series("gpu0_utilization").Len() == 0 {
		t.Fatal("utilization series empty")
	}
}
