package core

import (
	"testing"
	"time"

	"swapservellm/internal/config"
	"swapservellm/internal/simclock"
)

func TestSanitizeName(t *testing.T) {
	cases := map[string]string{
		"llama3.2:1b-fp16":  "llama3.2-1b-fp16",
		"deepseek-r1:7b-q4": "deepseek-r1-7b-q4",
		"a/b c":             "a-b-c",
		"Already_Safe-1.0":  "Already_Safe-1.0",
		"weird!@#chars":     "weird---chars",
	}
	for in, want := range cases {
		if got := sanitizeName(in); got != want {
			t.Errorf("sanitizeName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestSortStrings(t *testing.T) {
	ss := []string{"c", "a", "b", "a"}
	sortStrings(ss)
	want := []string{"a", "a", "b", "c"}
	for i := range want {
		if ss[i] != want[i] {
			t.Fatalf("sorted = %v", ss)
		}
	}
	sortStrings(nil) // must not panic
}

func TestToWallScaling(t *testing.T) {
	cfg := config.Default()
	cfg.Models = []config.Model{ollamaModel("llama3.2:1b-fp16")}
	s, err := New(cfg, Options{Clock: simclock.NewScaled(testEpoch, 1000)})
	if err != nil {
		t.Fatal(err)
	}
	if got := s.toWall(10 * time.Second); got != 10*time.Millisecond {
		t.Fatalf("toWall(10s) at 1000x = %v, want 10ms", got)
	}

	// Unscaled clocks pass through.
	s2, err := New(cfg, Options{Clock: simclock.NewReal()})
	if err != nil {
		t.Fatal(err)
	}
	if got := s2.toWall(time.Second); got != time.Second {
		t.Fatalf("toWall on real clock = %v", got)
	}
}

func TestServerAccessorsBeforeStart(t *testing.T) {
	cfg := config.Default()
	cfg.Models = []config.Model{ollamaModel("llama3.2:1b-fp16")}
	s, err := New(cfg, Options{Clock: simclock.NewScaled(testEpoch, 2000)})
	if err != nil {
		t.Fatal(err)
	}
	if s.Addr() != "" {
		t.Fatal("Addr before Start should be empty")
	}
	if s.Testbed().Name != "h100" {
		t.Fatalf("testbed = %s", s.Testbed().Name)
	}
	if s.Clock() == nil || s.Registry() == nil || s.TaskManager() == nil ||
		s.Controller() == nil || s.Scheduler() == nil || s.Driver() == nil {
		t.Fatal("nil accessor")
	}
	if _, ok := s.Backend("anything"); ok {
		t.Fatal("backend exists before Start")
	}
	// Shutdown before Start is safe.
	s.Shutdown()
}
