package core

import (
	"context"
	"fmt"
	"testing"

	"swapservellm/internal/gpu"
	"swapservellm/internal/perfmodel"
	"swapservellm/internal/simclock"
)

func BenchmarkReserveRelease(b *testing.B) {
	clock := simclock.NewScaled(testEpoch, 100000)
	topo := gpu.NewTopology(perfmodel.GPUH100, 1, 80*gib)
	tm := NewTaskManager(clock, topo)
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := tm.Reserve(ctx, []int{0}, gib, "bench")
		if err != nil {
			b.Fatal(err)
		}
		res.Release()
	}
}

func BenchmarkReserveMultiGPU(b *testing.B) {
	clock := simclock.NewScaled(testEpoch, 100000)
	topo := gpu.NewTopology(perfmodel.GPUH100, 8, 80*gib)
	tm := NewTaskManager(clock, topo)
	ctx := context.Background()
	gpus := []int{0, 1, 2, 3, 4, 5, 6, 7}
	for i := 0; i < b.N; i++ {
		res, err := tm.Reserve(ctx, gpus, gib, "bench")
		if err != nil {
			b.Fatal(err)
		}
		res.Release()
	}
}

func BenchmarkPolicySelect(b *testing.B) {
	cands := make([]Candidate, 32)
	for i := range cands {
		cands[i] = Candidate{
			Name:              fmt.Sprintf("m%d", i),
			QueueLen:          i % 5,
			LastAccessedNanos: int64(i * 1000),
			FreeableBytes:     int64(i) * gib,
		}
	}
	for _, policy := range []PreemptionPolicy{DemandAwarePolicy{}, LRUPolicy{}, LargestFirstPolicy{}} {
		b.Run(policy.Name(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				policy.Select(cands)
			}
		})
	}
}

func BenchmarkBackendTouch(b *testing.B) {
	bk := &Backend{}
	now := testEpoch
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		now = now.Add(1)
		bk.touch(now)
	}
}
