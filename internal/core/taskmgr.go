package core

import (
	"container/heap"
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"swapservellm/internal/gpu"
	"swapservellm/internal/obs"
	"swapservellm/internal/simclock"
)

// Evictor reclaims GPU memory by swapping out a running backend. The
// engine controller implements it; the task manager invokes it when a
// reservation cannot be satisfied from free memory (§3.5).
type Evictor interface {
	// EvictOne selects the best preemption candidate on the given device
	// (excluding the named backends) and swaps it out, returning false when
	// nothing is evictable.
	EvictOne(ctx context.Context, gpuID int, exclude map[string]bool) (freed int64, ok bool)
}

// Reservation is a granted claim on GPU memory with scoped
// acquire-release semantics (§6): the holder performs its swap-in, the
// actual device allocation replaces the claim, and Release returns the
// claimed headroom to the pool.
type Reservation struct {
	tm       *TaskManager
	gpus     []int
	bytes    int64
	released bool
	mu       sync.Mutex
}

// Release returns the reservation's headroom. Safe to call once the
// restore's device allocation has landed (or after a failed swap-in).
// Idempotent.
func (r *Reservation) Release() {
	r.mu.Lock()
	if r.released {
		r.mu.Unlock()
		return
	}
	r.released = true
	r.mu.Unlock()
	r.tm.release(r.gpus, r.bytes)
}

// pending is one queued reservation request.
type pending struct {
	gpus    []int
	bytes   int64
	owner   string
	seq     int64
	granted chan struct{}
	index   int

	// claimed tracks, per device, the bytes the grant loop has already
	// carved out of the free pool for this reservation. The queue head
	// claims incrementally as memory frees — a pipelined swap-out
	// releases capacity chunk by chunk, and each chunk lands here before
	// a later request can steal it. The reservation is granted when
	// claimed reaches bytes on every device; a cancelled or released
	// reservation returns whatever it had claimed.
	claimed map[int]int64
}

// pendingHeap orders reservations by arrival (FIFO grant order).
type pendingHeap []*pending

func (h pendingHeap) Len() int            { return len(h) }
func (h pendingHeap) Less(i, j int) bool  { return h[i].seq < h[j].seq }
func (h pendingHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i]; h[i].index = i; h[j].index = j }
func (h *pendingHeap) Push(x interface{}) { p := x.(*pending); p.index = len(*h); *h = append(*h, p) }
func (h *pendingHeap) Pop() interface{} {
	old := *h
	n := len(old)
	p := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return p
}

// TaskManager tracks GPU memory reservations across the topology with a
// priority queue (§3.4), observes utilization via the GPU monitor (§3.1
// ⑥), and reclaims memory through the evictor when requests cannot be
// satisfied (⑦).
type TaskManager struct {
	clock   simclock.Clock
	topo    *gpu.Topology
	monitor *gpu.Monitor
	evictor Evictor

	mu       sync.Mutex
	reserved map[int]int64 // gpuID -> granted-but-unallocated headroom
	queue    pendingHeap
	seq      int64
}

// NewTaskManager builds a task manager over the topology. Set the evictor
// with SetEvictor before reservations can trigger preemption.
func NewTaskManager(clock simclock.Clock, topo *gpu.Topology) *TaskManager {
	return &TaskManager{
		clock:    clock,
		topo:     topo,
		monitor:  gpu.NewMonitor(topo),
		reserved: make(map[int]int64),
	}
}

// SetEvictor installs the preemption executor (the engine controller).
func (tm *TaskManager) SetEvictor(e Evictor) { tm.evictor = e }

// Monitor returns the GPU monitor.
func (tm *TaskManager) Monitor() *gpu.Monitor { return tm.monitor }

// availableLocked returns the grantable bytes on a device: free memory
// minus already-granted headroom. Caller holds tm.mu.
func (tm *TaskManager) availableLocked(gpuID int) int64 {
	d, err := tm.topo.Device(gpuID)
	if err != nil {
		return 0
	}
	return d.Free() - tm.reserved[gpuID]
}

// Available returns the currently grantable bytes on a device.
func (tm *TaskManager) Available(gpuID int) int64 {
	tm.mu.Lock()
	defer tm.mu.Unlock()
	return tm.availableLocked(gpuID)
}

// Reserved returns the granted-but-unallocated headroom on a device.
func (tm *TaskManager) Reserved(gpuID int) int64 {
	tm.mu.Lock()
	defer tm.mu.Unlock()
	return tm.reserved[gpuID]
}

// PendingCount returns the number of queued reservations.
func (tm *TaskManager) PendingCount() int {
	tm.mu.Lock()
	defer tm.mu.Unlock()
	return len(tm.queue)
}

// Reserve claims bytes on every listed device (the multi-GPU scoped
// acquisition of §6; devices are processed as one atomic claim). It
// blocks — preempting running backends when needed — until the claim is
// granted, the context is cancelled, or the claim is impossible.
// owner names the requesting backend so preemption excludes it.
func (tm *TaskManager) Reserve(ctx context.Context, gpus []int, bytes int64, owner string) (res *Reservation, err error) {
	ctx, span := obs.Start(ctx, "reserve",
		obs.String("owner", owner), obs.Int64("bytes", bytes))
	defer func() { span.EndErr(err) }()
	if bytes < 0 {
		return nil, fmt.Errorf("core: negative reservation %d", bytes)
	}
	gpus = normalizeGPUs(gpus)
	for _, id := range gpus {
		d, err := tm.topo.Device(id)
		if err != nil {
			return nil, err
		}
		if bytes > d.Total() {
			return nil, fmt.Errorf("%w: need %d on gpu %d with capacity %d",
				ErrNoCapacity, bytes, id, d.Total())
		}
	}

	p := &pending{gpus: gpus, bytes: bytes, owner: owner, granted: make(chan struct{})}
	tm.mu.Lock()
	tm.seq++
	p.seq = tm.seq
	heap.Push(&tm.queue, p)
	tm.grantLocked()
	blocked := !isClosed(p.granted)
	tm.mu.Unlock()

	// A waiter that was not granted immediately drives preemption for
	// itself once it reaches the head of the queue; the evictor
	// serializes actual evictions.
	gate := simclock.GateFor(tm.clock)
	if blocked && tm.evictor != nil {
		gate.Go(func() { tm.reclaim(ctx, p) })
	}

	granted := false
	gate.Block(func() {
		select {
		case <-p.granted:
			granted = true
		case <-ctx.Done():
		}
	})
	if granted {
		return &Reservation{tm: tm, gpus: gpus, bytes: bytes}, nil
	}
	{
		tm.mu.Lock()
		select {
		case <-p.granted:
			// Granted concurrently with cancellation: release it.
			tm.mu.Unlock()
			r := &Reservation{tm: tm, gpus: gpus, bytes: bytes}
			r.Release()
			return nil, ctx.Err()
		default:
		}
		if p.index >= 0 && p.index < len(tm.queue) && tm.queue[p.index] == p {
			heap.Remove(&tm.queue, p.index)
		}
		// A partially claimed head gives back what it took.
		tm.returnClaimsLocked(p)
		tm.grantLocked()
		tm.mu.Unlock()
		return nil, ctx.Err()
	}
}

// normalizeGPUs sorts and deduplicates device indices (ordered
// acquisition prevents deadlock between concurrent multi-GPU claims).
func normalizeGPUs(gpus []int) []int {
	if len(gpus) == 0 {
		return []int{0}
	}
	out := append([]int(nil), gpus...)
	sort.Ints(out)
	w := 1
	for i := 1; i < len(out); i++ {
		if out[i] != out[i-1] {
			out[w] = out[i]
			w++
		}
	}
	return out[:w]
}

// grantLocked grants queued reservations in FIFO order. Strict ordering
// avoids starving large requests (§3.4's LLaMA 70B example queues behind
// nothing but gets the next grant once memory frees). The head claims
// incrementally: any positive headroom on a device it still needs is
// carved out immediately, so capacity freed chunk-by-chunk by a
// pipelined swap-out accrues to the oldest waiter instead of sitting
// exposed until the full amount fits. The grant completes — and the next
// waiter gets its turn — once every device is fully claimed. Caller
// holds tm.mu.
func (tm *TaskManager) grantLocked() {
	for len(tm.queue) > 0 {
		head := tm.queue[0]
		if !tm.claimHeadLocked(head) {
			return
		}
		heap.Pop(&tm.queue)
		close(head.granted)
	}
}

// claimHeadLocked claims whatever headroom is available toward p's
// remaining need on each device, reporting whether p is now fully
// claimed. Caller holds tm.mu.
func (tm *TaskManager) claimHeadLocked(p *pending) bool {
	done := true
	for _, id := range p.gpus {
		need := p.bytes - p.claimed[id]
		if need <= 0 {
			continue
		}
		avail := tm.availableLocked(id)
		if avail > need {
			avail = need
		}
		if avail > 0 {
			if p.claimed == nil {
				p.claimed = make(map[int]int64)
			}
			p.claimed[id] += avail
			tm.reserved[id] += avail
		}
		if p.claimed[id] < p.bytes {
			done = false
		}
	}
	return done
}

// returnClaimsLocked hands back the partial claims of a reservation that
// is leaving the queue ungranted. Caller holds tm.mu.
func (tm *TaskManager) returnClaimsLocked(p *pending) {
	for id, c := range p.claimed {
		tm.reserved[id] -= c
		if tm.reserved[id] < 0 {
			tm.reserved[id] = 0
		}
	}
	p.claimed = nil
}

// isClosed reports whether a grant channel has been closed.
func isClosed(ch chan struct{}) bool {
	select {
	case <-ch:
		return true
	default:
		return false
	}
}

// reclaim drives the demand-aware preemption loop for one blocked
// reservation: once the reservation reaches the head of the FIFO queue,
// evict the policy's best candidate, re-check, and repeat until granted
// or cancelled (§3.5). Non-head waiters idle — the head's reclaim makes
// progress for everyone.
func (tm *TaskManager) reclaim(ctx context.Context, p *pending) {
	exclude := map[string]bool{p.owner: true}
	gate := simclock.GateFor(tm.clock)
	backoff := func() bool {
		// Simulated-time backoff, cut short by a grant or cancellation.
		return gate.Wait(20*time.Millisecond, p.granted, ctx.Done()) < 0
	}
	for {
		select {
		case <-p.granted:
			return
		case <-ctx.Done():
			return
		default:
		}

		// Only the queue head drives eviction (strict FIFO grants).
		tm.mu.Lock()
		isHead := len(tm.queue) > 0 && tm.queue[0] == p
		shortID := -1
		if isHead {
			for _, id := range p.gpus {
				// Incremental claims shrink the outstanding need.
				if tm.availableLocked(id) < p.bytes-p.claimed[id] {
					shortID = id
					break
				}
			}
			if shortID == -1 {
				tm.grantLocked()
			}
		}
		tm.mu.Unlock()

		if !isHead || shortID == -1 {
			if !backoff() {
				return
			}
			continue
		}

		if _, ok := tm.evictor.EvictOne(ctx, shortID, exclude); !ok {
			// Nothing evictable right now (candidates busy or already
			// swapping): retry after a short simulated backoff.
			if !backoff() {
				return
			}
			continue
		}
		tm.mu.Lock()
		tm.grantLocked()
		tm.mu.Unlock()
	}
}

// release returns headroom and re-runs the grant loop.
func (tm *TaskManager) release(gpus []int, bytes int64) {
	tm.mu.Lock()
	for _, id := range gpus {
		tm.reserved[id] -= bytes
		if tm.reserved[id] < 0 {
			tm.reserved[id] = 0
		}
	}
	tm.grantLocked()
	tm.mu.Unlock()
}

// NotifyFreed re-runs the grant loop after memory was freed outside the
// reservation system (a swap-out or container stop).
func (tm *TaskManager) NotifyFreed() {
	tm.mu.Lock()
	tm.grantLocked()
	tm.mu.Unlock()
}

// AsyncReservation is a queued reservation that does not block its
// creator: the pipelined swap-exchange enqueues one as a FIFO barrier so
// capacity freed by the victim's checkpoint accrues to the incoming
// target rather than to a third party, while the restore itself proceeds
// without waiting for the full grant.
type AsyncReservation struct {
	tm *TaskManager
	p  *pending

	mu       sync.Mutex
	released bool
}

// Done is closed once the reservation has been fully granted.
func (a *AsyncReservation) Done() <-chan struct{} { return a.p.granted }

// Release returns whatever the reservation holds — the full claim when
// granted, the partial per-device claims otherwise — and removes it from
// the queue. Idempotent.
func (a *AsyncReservation) Release() {
	a.mu.Lock()
	if a.released {
		a.mu.Unlock()
		return
	}
	a.released = true
	a.mu.Unlock()

	tm := a.tm
	tm.mu.Lock()
	if isClosed(a.p.granted) {
		// Fully granted: every device holds the full claim.
		for _, id := range a.p.gpus {
			tm.reserved[id] -= a.p.bytes
			if tm.reserved[id] < 0 {
				tm.reserved[id] = 0
			}
		}
	} else {
		if a.p.index >= 0 && a.p.index < len(tm.queue) && tm.queue[a.p.index] == a.p {
			heap.Remove(&tm.queue, a.p.index)
		}
		tm.returnClaimsLocked(a.p)
	}
	tm.grantLocked()
	tm.mu.Unlock()
}

// ReserveAsync enqueues a reservation and returns immediately with a
// handle; no preemption loop is spawned. The claim participates in the
// normal FIFO grant order and accrues freed capacity incrementally like
// any other waiter. The caller must Release it exactly as with Reserve.
// ctx carries the active trace span (the enqueue is recorded as an
// event on it); the handle itself does not block, so cancellation is
// the caller's to honor via Release.
func (tm *TaskManager) ReserveAsync(ctx context.Context, gpus []int, bytes int64, owner string) (*AsyncReservation, error) {
	obs.AddEvent(ctx, "reserve.enqueue",
		obs.String("owner", owner), obs.Int64("bytes", bytes))
	if bytes < 0 {
		return nil, fmt.Errorf("core: negative reservation %d", bytes)
	}
	gpus = normalizeGPUs(gpus)
	for _, id := range gpus {
		d, err := tm.topo.Device(id)
		if err != nil {
			return nil, err
		}
		if bytes > d.Total() {
			return nil, fmt.Errorf("%w: need %d on gpu %d with capacity %d",
				ErrNoCapacity, bytes, id, d.Total())
		}
	}
	p := &pending{gpus: gpus, bytes: bytes, owner: owner, granted: make(chan struct{})}
	tm.mu.Lock()
	tm.seq++
	p.seq = tm.seq
	heap.Push(&tm.queue, p)
	tm.grantLocked()
	tm.mu.Unlock()
	return &AsyncReservation{tm: tm, p: p}, nil
}
