package core

import (
	"context"
	"fmt"
	"time"

	"swapservellm/internal/metrics"
	"swapservellm/internal/obs"
	"swapservellm/internal/simclock"
)

// Scheduler coordinates swap-in requests from model workers (§3.1 ④⑤):
// it reserves the required GPU memory with the task manager and triggers
// the swap-in via the engine controller once the reservation is granted.
type Scheduler struct {
	clock simclock.Clock
	tm    *TaskManager
	ctrl  *Controller
	reg   *metrics.Registry
	ttl   TTLPolicy
}

// NewScheduler builds a scheduler.
func NewScheduler(clock simclock.Clock, tm *TaskManager, ctrl *Controller, reg *metrics.Registry) *Scheduler {
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	return &Scheduler{clock: clock, tm: tm, ctrl: ctrl, reg: reg}
}

// EnsureRunning makes the backend servable: a no-op when it is already
// running, otherwise a full swap-in with memory reservation. Concurrent
// calls for the same backend collapse onto one swap-in (per-model
// synchronization, §4.1).
func (s *Scheduler) EnsureRunning(ctx context.Context, b *Backend) (err error) {
	if b.State() == BackendRunning {
		return nil
	}
	ctx, span := obs.Start(ctx, "ensure.running", obs.String("model", b.name))
	defer func() { span.EndErr(err) }()
	// The lock may be held by a peer that is asleep on the clock (a
	// swap mid-flight); acquire through the gate so a virtual clock can
	// keep advancing while this worker waits.
	simclock.GateFor(s.clock).Block(b.swapMu.Lock)
	defer b.swapMu.Unlock()
	// A reaper- or preemption-initiated swap-out may be mid-flight; wait
	// for the transition to settle before deciding.
	for b.State() == BackendSwapping {
		if err := ctx.Err(); err != nil {
			return err
		}
		s.clock.Sleep(5 * time.Millisecond)
	}
	// Re-check: another worker may have completed the swap-in while we
	// waited on the mutex.
	switch b.State() {
	case BackendRunning:
		return nil
	case BackendFailed:
		return errBackendFailed
	case BackendInitializing:
		return fmt.Errorf("core: backend %s still initializing", b.name)
	}

	// This is a reactive swap-in: demand arrived while the backend was
	// cold. Adaptive TTL policies learn from exactly this signal — an
	// access shortly after an eviction means the TTL was too short.
	if s.ttl != nil {
		s.ttl.NoteAccess(b.name, s.clock.Now())
	}

	t0 := s.clock.Now()
	// RequiredBytes is the backend's total footprint; tensor-parallel
	// backends need an even share on each device of their topology.
	perDevice := b.RequiredBytes() / int64(len(b.gpus))
	res, rerr := s.tm.Reserve(ctx, b.gpus, perDevice, b.name)
	if rerr != nil {
		return fmt.Errorf("core: reserving %d bytes for %s: %w", b.RequiredBytes(), b.name, rerr)
	}
	s.reg.Histogram("reservation_wait").Observe(s.clock.Since(t0))
	// The reservation's headroom is handed back once the restore's real
	// allocation has landed (scoped acquire-release, §6).
	defer res.Release()

	return s.ctrl.SwapIn(ctx, b)
}
