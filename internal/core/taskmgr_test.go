package core

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"

	"swapservellm/internal/gpu"
	"swapservellm/internal/perfmodel"
	"swapservellm/internal/simclock"
)

const gib = int64(1) << 30

var testEpoch = time.Date(2025, 11, 16, 0, 0, 0, 0, time.UTC)

func newTM(t *testing.T, gpuCount int) (*TaskManager, *gpu.Topology) {
	t.Helper()
	clock := simclock.NewScaled(testEpoch, 5000)
	topo := gpu.NewTopology(perfmodel.GPUH100, gpuCount, 80*gib)
	return NewTaskManager(clock, topo), topo
}

func TestReserveImmediateGrant(t *testing.T) {
	tm, _ := newTM(t, 1)
	res, err := tm.Reserve(context.Background(), []int{0}, 30*gib, "a")
	if err != nil {
		t.Fatal(err)
	}
	if got := tm.Reserved(0); got != 30*gib {
		t.Fatalf("Reserved = %d", got)
	}
	if got := tm.Available(0); got != 50*gib {
		t.Fatalf("Available = %d", got)
	}
	res.Release()
	if got := tm.Reserved(0); got != 0 {
		t.Fatalf("Reserved after release = %d", got)
	}
}

func TestReserveReleaseIdempotent(t *testing.T) {
	tm, _ := newTM(t, 1)
	res, _ := tm.Reserve(context.Background(), []int{0}, 10*gib, "a")
	res.Release()
	res.Release()
	if got := tm.Reserved(0); got != 0 {
		t.Fatalf("double release corrupted accounting: %d", got)
	}
}

func TestReserveTooLarge(t *testing.T) {
	tm, _ := newTM(t, 1)
	if _, err := tm.Reserve(context.Background(), []int{0}, 81*gib, "a"); !errors.Is(err, ErrNoCapacity) {
		t.Fatalf("expected ErrNoCapacity, got %v", err)
	}
}

func TestReserveNegative(t *testing.T) {
	tm, _ := newTM(t, 1)
	if _, err := tm.Reserve(context.Background(), []int{0}, -1, "a"); err == nil {
		t.Fatal("negative reservation accepted")
	}
}

func TestReserveUnknownDevice(t *testing.T) {
	tm, _ := newTM(t, 1)
	if _, err := tm.Reserve(context.Background(), []int{3}, gib, "a"); err == nil {
		t.Fatal("unknown device accepted")
	}
}

func TestReserveBlocksUntilRelease(t *testing.T) {
	tm, _ := newTM(t, 1)
	first, err := tm.Reserve(context.Background(), []int{0}, 60*gib, "a")
	if err != nil {
		t.Fatal(err)
	}

	granted := make(chan *Reservation, 1)
	go func() {
		res, err := tm.Reserve(context.Background(), []int{0}, 40*gib, "b")
		if err != nil {
			t.Errorf("blocked Reserve: %v", err)
			return
		}
		granted <- res
	}()

	select {
	case <-granted:
		t.Fatal("40 GiB granted while 60 GiB reserved on an 80 GiB device")
	case <-time.After(30 * time.Millisecond):
	}
	first.Release()
	select {
	case res := <-granted:
		res.Release()
	case <-time.After(2 * time.Second):
		t.Fatal("reservation not granted after release")
	}
}

func TestReserveFIFOOrder(t *testing.T) {
	// A large request queued first must be granted before a later small
	// one (strict FIFO prevents starvation).
	tm, _ := newTM(t, 1)
	first, _ := tm.Reserve(context.Background(), []int{0}, 70*gib, "a")

	var order []string
	var mu sync.Mutex
	var wg sync.WaitGroup
	record := func(name string) {
		mu.Lock()
		order = append(order, name)
		mu.Unlock()
	}

	wg.Add(2)
	go func() {
		defer wg.Done()
		res, err := tm.Reserve(context.Background(), []int{0}, 50*gib, "big")
		if err == nil {
			record("big")
			res.Release()
		}
	}()
	time.Sleep(20 * time.Millisecond) // let "big" enqueue first
	go func() {
		defer wg.Done()
		res, err := tm.Reserve(context.Background(), []int{0}, 40*gib, "small")
		if err == nil {
			record("small")
			res.Release()
		}
	}()
	time.Sleep(20 * time.Millisecond)
	first.Release()
	wg.Wait()
	if len(order) != 2 || order[0] != "big" {
		t.Fatalf("grant order = %v, want big first", order)
	}
}

func TestReserveCancellation(t *testing.T) {
	tm, _ := newTM(t, 1)
	first, _ := tm.Reserve(context.Background(), []int{0}, 70*gib, "a")
	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() {
		_, err := tm.Reserve(ctx, []int{0}, 40*gib, "b")
		errCh <- err
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case err := <-errCh:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("cancelled Reserve did not return")
	}
	if tm.PendingCount() != 0 {
		t.Fatalf("pending queue not cleaned: %d", tm.PendingCount())
	}
	first.Release()
	// A later reservation must still work.
	res, err := tm.Reserve(context.Background(), []int{0}, 40*gib, "c")
	if err != nil {
		t.Fatal(err)
	}
	res.Release()
}

func TestConcurrentSmallReservations(t *testing.T) {
	// §3.4: multiple requests that fit together are granted concurrently.
	tm, _ := newTM(t, 1)
	var wg sync.WaitGroup
	var granted atomic.Int32
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := tm.Reserve(context.Background(), []int{0}, 16*gib, "m")
			if err != nil {
				t.Errorf("Reserve: %v", err)
				return
			}
			granted.Add(1)
			res.Release()
		}()
	}
	wg.Wait()
	if granted.Load() != 4 {
		t.Fatalf("granted %d of 4", granted.Load())
	}
}

func TestMultiGPUReservation(t *testing.T) {
	tm, topo := newTM(t, 2)
	res, err := tm.Reserve(context.Background(), []int{1, 0, 0}, 40*gib, "tp")
	if err != nil {
		t.Fatal(err)
	}
	if tm.Reserved(0) != 40*gib || tm.Reserved(1) != 40*gib {
		t.Fatalf("reserved: gpu0=%d gpu1=%d", tm.Reserved(0), tm.Reserved(1))
	}
	res.Release()
	if tm.Reserved(0) != 0 || tm.Reserved(1) != 0 {
		t.Fatal("release did not clear both devices")
	}
	_ = topo
}

func TestMultiGPUBlocksOnOneDevice(t *testing.T) {
	tm, topo := newTM(t, 2)
	d1, _ := topo.Device(1)
	d1.Alloc("squatter", 70*gib)

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	_, err := tm.Reserve(ctx, []int{0, 1}, 40*gib, "tp")
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline (blocked on gpu1)", err)
	}
}

// fakeEvictor frees memory from a device on demand.
type fakeEvictor struct {
	dev    *gpu.Device
	owner  string
	calls  atomic.Int32
	refuse bool
}

func (f *fakeEvictor) EvictOne(ctx context.Context, gpuID int, exclude map[string]bool) (int64, bool) {
	f.calls.Add(1)
	if f.refuse {
		return 0, false
	}
	freed, err := f.dev.FreeOwner(f.owner)
	if err != nil {
		return 0, false
	}
	return freed, true
}

func TestReservePreemptsViaEvictor(t *testing.T) {
	tm, topo := newTM(t, 1)
	dev, _ := topo.Device(0)
	dev.Alloc("resident-model", 70*gib)
	ev := &fakeEvictor{dev: dev, owner: "resident-model"}
	tm.SetEvictor(ev)

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	res, err := tm.Reserve(ctx, []int{0}, 40*gib, "incoming")
	if err != nil {
		t.Fatalf("Reserve with evictor: %v", err)
	}
	res.Release()
	if ev.calls.Load() == 0 {
		t.Fatal("evictor never invoked")
	}
}

func TestReserveEvictorRefuses(t *testing.T) {
	tm, topo := newTM(t, 1)
	dev, _ := topo.Device(0)
	dev.Alloc("resident-model", 70*gib)
	tm.SetEvictor(&fakeEvictor{dev: dev, owner: "resident-model", refuse: true})

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Millisecond)
	defer cancel()
	if _, err := tm.Reserve(ctx, []int{0}, 40*gib, "incoming"); err == nil {
		t.Fatal("Reserve succeeded though evictor refused")
	}
}

func TestNotifyFreedGrantsWaiters(t *testing.T) {
	tm, topo := newTM(t, 1)
	dev, _ := topo.Device(0)
	dev.Alloc("external", 70*gib)

	granted := make(chan struct{})
	go func() {
		res, err := tm.Reserve(context.Background(), []int{0}, 40*gib, "w")
		if err == nil {
			res.Release()
			close(granted)
		}
	}()
	time.Sleep(20 * time.Millisecond)
	dev.FreeOwner("external")
	tm.NotifyFreed()
	select {
	case <-granted:
	case <-time.After(2 * time.Second):
		t.Fatal("waiter not granted after NotifyFreed")
	}
}

func TestNormalizeGPUs(t *testing.T) {
	cases := []struct {
		in, want []int
	}{
		{nil, []int{0}},
		{[]int{2, 0, 1}, []int{0, 1, 2}},
		{[]int{1, 1, 1}, []int{1}},
		{[]int{3, 1, 3, 1}, []int{1, 3}},
	}
	for _, c := range cases {
		got := normalizeGPUs(c.in)
		if len(got) != len(c.want) {
			t.Errorf("normalizeGPUs(%v) = %v", c.in, got)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("normalizeGPUs(%v) = %v", c.in, got)
			}
		}
	}
}

// Property: under any interleaving of reservations and releases, the
// granted headroom never exceeds device capacity and never goes negative,
// and once everything is released the accounting returns to zero.
func TestReservationAccountingProperty(t *testing.T) {
	f := func(sizes []uint8) bool {
		tm, _ := newTM(t, 1)
		var wg sync.WaitGroup
		valid := true
		var mu sync.Mutex
		for _, raw := range sizes {
			bytes := (int64(raw%40) + 1) * gib
			wg.Add(1)
			go func(bytes int64) {
				defer wg.Done()
				ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
				defer cancel()
				res, err := tm.Reserve(ctx, []int{0}, bytes, "p")
				if err != nil {
					return
				}
				r := tm.Reserved(0)
				mu.Lock()
				if r < 0 || r > 80*gib {
					valid = false
				}
				mu.Unlock()
				res.Release()
			}(bytes)
		}
		wg.Wait()
		return valid && tm.Reserved(0) == 0 && tm.PendingCount() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
