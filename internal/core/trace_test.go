package core

import (
	"bytes"
	"context"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"swapservellm/internal/obs"
	"swapservellm/internal/simclock"
)

var updateGolden = flag.Bool("update", false, "rewrite golden trace files")

// tracedExchange boots the standard exchange fixture with a tracer,
// runs one sequential swap-exchange, and returns the deterministic
// WriteTree rendering plus the raw span snapshot. Each call builds a
// fresh server, clock, and tracer, so two calls are two independent
// runs of the same seedless deterministic simulation.
func tracedExchange(t *testing.T) (string, []obs.SpanData) {
	t.Helper()
	clock := simclock.NewScaled(testEpoch, 20000)
	tracer := obs.NewTracer(clock)
	s, victim, target := exchangeServer(t, false, Options{Clock: clock, Tracer: tracer})
	if err := s.Controller().SwapExchange(context.Background(), victim, target); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tracer.WriteTree(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String(), tracer.Snapshot()
}

// TestGoldenTraceDeterministic pins the span tree of a fixed-seed
// sequential exchange two ways: two fresh runs must render
// byte-identically (no hidden wall-clock or map-order dependence), and
// the rendering must match the checked-in golden file
// (testdata/golden_exchange_tree.txt; regenerate with -update after an
// intentional lifecycle change).
func TestGoldenTraceDeterministic(t *testing.T) {
	first, _ := tracedExchange(t)
	second, _ := tracedExchange(t)
	if first != second {
		t.Fatalf("two identical runs rendered different trees:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", first, second)
	}

	golden := filepath.Join("testdata", "golden_exchange_tree.txt")
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(first), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden file (run with -update to create): %v", err)
	}
	if first != string(want) {
		t.Fatalf("trace tree deviates from golden file (re-run with -update if the lifecycle changed intentionally):\n--- got ---\n%s\n--- want ---\n%s", first, want)
	}

	// Structural floor, independent of the golden bytes: the exchange
	// span must exist and nest the full phase taxonomy down to chunk
	// events.
	for _, must := range []string{
		"- swap.exchange",
		"- swap.out",
		"- swap.in",
		"- reserve",
		"- ckpt.checkpoint",
		"- ckpt.restore",
		"- cgroup.freeze",
		"- cgroup.thaw",
		"* chunk",
	} {
		if !strings.Contains(first, must) {
			t.Errorf("trace tree missing %q:\n%s", must, first)
		}
	}
}

// TestExchangePhaseDurationsSumToLatency checks the trace's core
// accounting claim: the swap.exchange span's direct children are its
// phases, and their durations account for (nearly) all of the measured
// exchange latency — the trace explains where the time went.
func TestExchangePhaseDurationsSumToLatency(t *testing.T) {
	_, spans := tracedExchange(t)
	var exch obs.SpanData
	found := false
	for _, s := range spans {
		if s.Name == "swap.exchange" {
			if found {
				t.Fatal("more than one swap.exchange span in a single-exchange run")
			}
			exch, found = s, true
		}
	}
	if !found {
		t.Fatal("no swap.exchange span recorded")
	}
	if !exch.Ended {
		t.Fatal("swap.exchange span never ended")
	}
	total := exch.End.Sub(exch.Start)
	if total <= 0 {
		t.Fatalf("swap.exchange duration = %v", total)
	}

	var sum time.Duration
	phases := map[string]time.Duration{}
	for _, s := range spans {
		if s.Parent != exch.ID {
			continue
		}
		if !s.Ended {
			t.Fatalf("phase %s never ended", s.Name)
		}
		d := s.End.Sub(s.Start)
		sum += d
		phases[s.Name] += d
	}
	for _, want := range []string{"swap.out", "swap.in", "reserve"} {
		if _, ok := phases[want]; !ok {
			t.Errorf("exchange has no %s phase; phases = %v", want, phases)
		}
	}
	// Sequential phases cannot overlap, so they can never exceed the
	// parent; the uncovered remainder (bookkeeping between phases) must
	// stay under 10% of the exchange.
	if sum > total {
		t.Fatalf("phase durations sum to %v, more than the exchange's %v", sum, total)
	}
	if gap := total - sum; gap > total/10 {
		t.Fatalf("phases cover only %v of the %v exchange (gap %v > 10%%); phases = %v",
			sum, total, gap, phases)
	}
}
