package core

import "errors"

// The package's error vocabulary, consolidated so callers (and the
// swaplint errwrap analyzer) have canonical errors.Is targets:
//
//   - ErrNoCapacity: a reservation exceeds a device's total capacity —
//     no amount of preemption can grant it. Permanent for the given
//     (model, device) pair.
//   - ErrBackendFailed: the backend's engine failed to initialize (or a
//     rollback left it unusable); requests to it are rejected until the
//     deployment is rebuilt.
//
// Swap paths additionally propagate (wrapped) sentinels from the layers
// below: cudackpt.ErrBadState / cudackpt.ErrHostMemory,
// cgroup.ErrNotFound, gpu.ErrOutOfMemory, chaos.ErrInjected, and
// context.Canceled / context.DeadlineExceeded for ctx aborts honored at
// chunk boundaries and queue waits.
var (
	ErrNoCapacity    = errors.New("core: reservation exceeds device capacity")
	ErrBackendFailed = errors.New("core: backend failed to initialize")
)

// errBackendFailed is the historical unexported alias of
// ErrBackendFailed, kept so existing internal call sites read the same.
var errBackendFailed = ErrBackendFailed
