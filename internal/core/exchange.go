package core

import (
	"context"
	"fmt"

	"swapservellm/internal/engine"
	"swapservellm/internal/obs"
	"swapservellm/internal/perfmodel"
	"swapservellm/internal/simclock"
)

// This file implements the swap-exchange fast path: replacing one
// running backend (the victim) with a swapped-out one (the target) as a
// single operation. The sequential baseline checkpoints the victim
// fully, reserves the freed memory, and only then restores the target —
// the two transfers serialize even though the PCIe link is full duplex.
// The pipelined path overlaps them: the victim's checkpoint frees device
// capacity chunk by chunk (D2H) while the target's restore claims it
// chunk by chunk (H2D), so the exchange completes in roughly the time of
// the slower transfer instead of their sum.

// SwapExchange replaces the running victim with the swapped-out target
// in one operation, using the pipelined full-duplex path when selected
// via SetPipelined and the sequential swap-out-then-swap-in baseline
// otherwise. The reported "swap_exchange_latency" histogram measures
// victim swap-out start to target serving.
func (ct *Controller) SwapExchange(ctx context.Context, victim, target *Backend) (err error) {
	if victim == target || victim.name == target.name {
		return fmt.Errorf("core: swap-exchange of %s with itself", victim.name)
	}
	ctx = ct.traceCtx(ctx)
	pipelined := ct.Pipelined()
	ctx, span := obs.Start(ctx, "swap.exchange",
		obs.String("victim", victim.name), obs.String("target", target.name),
		obs.Bool("pipelined", pipelined))
	defer func() { span.EndErr(err) }()
	if pipelined {
		return ct.swapExchangePipelined(ctx, victim, target)
	}
	return ct.swapExchangeSequential(ctx, victim, target)
}

// swapExchangeSequential is the A/B baseline: a full SwapOut, then a
// blocking reservation of the target's footprint, then a full SwapIn.
func (ct *Controller) swapExchangeSequential(ctx context.Context, victim, target *Backend) error {
	simclock.GateFor(ct.clock).Block(target.swapMu.Lock)
	defer target.swapMu.Unlock()
	if s := target.State(); s != BackendSwappedOut {
		return fmt.Errorf("core: swap-exchange target %s in state %v", target.name, s)
	}

	t0 := ct.clock.Now()
	if err := ct.SwapOut(ctx, victim); err != nil {
		return err
	}
	perDevice := target.RequiredBytes() / int64(len(target.gpus))
	res, err := ct.tm.Reserve(ctx, target.gpus, perDevice, target.name)
	if err != nil {
		return fmt.Errorf("core: reserving %d bytes for %s: %w", target.RequiredBytes(), target.name, err)
	}
	defer res.Release()
	if err := ct.SwapIn(ctx, target); err != nil {
		return err
	}
	ct.reg.Histogram("swap_exchange_latency").Observe(ct.clock.Since(t0))
	ct.reg.Counter("swap_exchanges").Inc()
	return nil
}

// swapExchangePipelined overlaps the victim's checkpoint with the
// target's restore. The victim is drained and frozen first; its Suspend
// then runs in a goroutine while RestoreWait claims each freed chunk as
// it lands. An async reservation acts as a FIFO barrier so the freed
// capacity accrues to the target rather than a third party — the restore
// itself never waits for the full grant.
func (ct *Controller) swapExchangePipelined(ctx context.Context, victim, target *Backend) error {
	simclock.GateFor(ct.clock).Block(target.swapMu.Lock)
	defer target.swapMu.Unlock()
	if s := target.State(); s != BackendSwappedOut {
		return fmt.Errorf("core: swap-exchange target %s in state %v", target.name, s)
	}

	simclock.GateFor(ct.clock).Block(victim.evictMu.Lock)
	defer victim.evictMu.Unlock()
	if s := victim.State(); s != BackendRunning {
		return fmt.Errorf("core: swap-exchange victim %s in state %v", victim.name, s)
	}

	t0 := ct.clock.Now()
	victim.setState(BackendSwapping)
	if err := ct.drain(ctx, victim); err != nil {
		victim.setState(BackendRunning)
		return err
	}
	eng := victim.ctr.Engine()
	victim.requiredBytes.Store(eng.GPUBytes())
	victim.sleepUsed.Store(false)
	if sleeper, ok := eng.(engine.Sleeper); ok && victim.useSleepMode {
		if err := sleeper.Sleep(ctx, 1); err == nil {
			victim.sleepUsed.Store(true)
		}
	}
	if err := ct.rt.Pause(ctx, victim.ctr); err != nil {
		ct.wakeIfSlept(ctx, victim, eng)
		victim.setState(BackendRunning)
		return fmt.Errorf("core: pausing container: %w", err)
	}

	target.setState(BackendSwapping)
	perDevice := target.RequiredBytes() / int64(len(target.gpus))
	barrier, err := ct.tm.ReserveAsync(ctx, target.gpus, perDevice, target.name)
	if err != nil {
		ct.recoverVictim(ctx, victim, eng)
		target.setState(BackendSwappedOut)
		return fmt.Errorf("core: reserving %d bytes for %s: %w", target.RequiredBytes(), target.name, err)
	}
	defer barrier.Release()

	// The restore aborts if the victim's checkpoint fails — without the
	// victim's capacity it could wait forever.
	rctx, cancel := context.WithCancel(ctx)
	defer cancel()

	type suspendResult struct {
		saved int64
		err   error
	}
	suspended := make(chan suspendResult, 1)
	gate := simclock.GateFor(ct.clock)
	gate.Go(func() {
		saved, serr := ct.rt.Driver().Suspend(ctx, victim.ctr.ID())
		if serr != nil {
			cancel()
		}
		suspended <- suspendResult{saved: saved, err: serr}
	})

	restoreErr := ct.rt.Driver().RestoreWait(rctx, target.ctr.ID())
	if restoreErr == nil {
		// The restore landed; the unlock must not be skipped by a
		// cancellation arriving now.
		ulCtx := context.WithoutCancel(ctx)
		restoreErr = retryTransient(func() error { return ct.rt.Driver().Unlock(ulCtx, target.ctr.ID()) })
	}
	var sres suspendResult
	gate.Block(func() { sres = <-suspended })

	// Victim leg: on success it is swapped out; on failure thaw it back
	// to a serving state (mirroring SwapOut's rollback). Either way the
	// target leg below still settles the target into a consistent state.
	victimErr := sres.err
	if victimErr == nil {
		ct.reg.Counter("swap_outs").Inc()
		ct.reg.Gauge("snapshot_bytes_" + victim.name).Set(float64(sres.saved))
		victim.setState(BackendSwappedOut)
		victim.swapOuts.Add(1)
		ct.tm.NotifyFreed()
	} else if !ct.recoverVictim(ctx, victim, eng) {
		victimErr = fmt.Errorf("%w (rollback thaw failed)", victimErr)
	}

	// Target leg: the driver rolled a failed restore back to
	// Checkpointed (or left it Locked after an unlock failure), so
	// failBack restores the SwappedOut contract.
	if restoreErr != nil {
		ferr := ct.failBack(ctx, target, "restoring GPU state", restoreErr)
		if victimErr != nil {
			// The victim's failure is the root cause; the restore only
			// aborted because the exchange cancelled it.
			return fmt.Errorf("core: checkpointing GPU state: %w (target restore aborted: %w)", victimErr, restoreErr)
		}
		return ferr
	}
	if err := retryTransient(func() error { return ct.rt.Unpause(ctx, target.ctr) }); err != nil {
		return ct.failBack(ctx, target, "unpausing container", err)
	}
	if target.sleepUsed.Load() {
		if sleeper, ok := target.ctr.Engine().(engine.Sleeper); ok {
			if err := sleeper.Wake(ctx); err != nil {
				return ct.failBack(ctx, target, "waking engine", err)
			}
		}
		target.sleepUsed.Store(false)
	}
	ct.clock.Sleep(perfmodel.EngineResumeOverhead(target.engine))
	if err := ct.verifyAPI(ctx, target); err != nil {
		return ct.failBack(ctx, target, "engine API not live after swap-in", err)
	}
	target.lastReady.Store(ct.clock.Now().UnixNano())
	target.setState(BackendRunning)
	target.swapIns.Add(1)
	ct.reg.Counter("swap_ins").Inc()

	if victimErr != nil {
		// The target is serving but the victim leg failed and was thawed
		// back to Running; report the partial failure.
		return fmt.Errorf("core: checkpointing GPU state: %w", victimErr)
	}
	ct.reg.Histogram("swap_exchange_latency").Observe(ct.clock.Since(t0))
	ct.reg.Counter("swap_exchanges").Inc()
	return nil
}

// recoverVictim thaws a frozen victim back to a serving state after a
// failed exchange, reporting whether the thaw succeeded. A thaw that
// keeps failing leaves the engine frozen, so the backend is marked
// failed. The thaw ignores ctx's cancellation — it is the rollback of
// an exchange ctx may have aborted — but keeps the trace span.
func (ct *Controller) recoverVictim(ctx context.Context, victim *Backend, eng engine.Engine) bool {
	rbCtx := context.WithoutCancel(ctx)
	if err := retryTransient(func() error { return ct.rt.Unpause(rbCtx, victim.ctr) }); err != nil {
		victim.setState(BackendFailed)
		return false
	}
	ct.wakeIfSlept(ctx, victim, eng)
	victim.setState(BackendRunning)
	return true
}
