// Package core implements SwapServeLLM itself — the paper's contribution:
// an OpenAI-compatible request router, per-model workers and queues, a
// scheduler coordinating swap-ins, a task manager with a GPU-memory
// reservation priority queue, a demand-aware preemption policy, and an
// engine controller that hot-swaps containerized inference engines via
// the cgroup freezer and transparent GPU checkpointing (§3, §4).
package core

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"swapservellm/internal/container"
	"swapservellm/internal/models"
	"swapservellm/internal/perfmodel"
	"swapservellm/internal/simclock"
)

// BackendState is a backend's serving state.
type BackendState int32

// Backend states.
const (
	// BackendInitializing: the container is starting and the engine is in
	// its cold-start initialization.
	BackendInitializing BackendState = iota
	// BackendRunning: the engine is resident in GPU memory and serving.
	BackendRunning
	// BackendSwappedOut: the engine is frozen with its GPU state saved in
	// a host-memory snapshot; a swap-in is required before serving.
	BackendSwappedOut
	// BackendSwapping: a swap-in or swap-out transition is in progress.
	BackendSwapping
	// BackendFailed: initialization failed; requests are rejected.
	BackendFailed
)

// String returns the lowercase state name.
func (s BackendState) String() string {
	switch s {
	case BackendInitializing:
		return "initializing"
	case BackendRunning:
		return "running"
	case BackendSwappedOut:
		return "swapped-out"
	case BackendSwapping:
		return "swapping"
	case BackendFailed:
		return "failed"
	default:
		return fmt.Sprintf("state(%d)", int32(s))
	}
}

// Backend is one configured (model, engine) pair: its container, request
// queue, and hot-swapping state. The index data structure of §3.2 maps
// model names to these.
type Backend struct {
	// name is the model name clients address (unique per deployment).
	name   string
	model  models.Model
	engine perfmodel.EngineKind
	gpus   []int

	ctr   *container.Container
	queue chan *queuedRequest

	state atomic.Int32 //swaplint:state allow=setState

	// evictMu is the per-backend write lock of §3.5: workers hold the read
	// side while forwarding; the controller takes the write side during
	// swap-out so no new requests reach a departing engine.
	evictMu sync.RWMutex
	// swapMu serializes swap-in attempts for this backend.
	swapMu sync.Mutex

	// active counts in-flight requests (forwarded, response not finished).
	active atomic.Int64

	// idleMu guards idleWait, the event-driven drain signal: the
	// controller's drain registers a waiter channel instead of polling
	// active, and decActive closes it when the last in-flight request
	// finishes.
	idleMu   sync.Mutex
	idleWait chan struct{}

	// pending counts requests a worker has dequeued but not yet finished
	// forwarding — work the backend owes even though it is not yet
	// in-flight at the engine. Guards against reaping a backend that just
	// swapped in for a queued request.
	pending atomic.Int64

	// lastReady is when the backend last became servable (init or
	// swap-in completion), so idle time is not measured across a period
	// spent swapped out (nanoseconds since epoch).
	lastReady atomic.Int64

	// lastFinished is when the backend last completed forwarding a
	// request (nanoseconds since epoch); the idle clock starts here.
	lastFinished atomic.Int64

	// lastAccessed is the most recent request arrival, the LRU tie-breaker
	// of the preemption policy (nanoseconds since epoch).
	lastAccessed atomic.Int64

	// ewmaInterArrival is an exponentially weighted moving average of the
	// gap between request arrivals (nanoseconds); the prefetcher's demand
	// predictor.
	ewmaInterArrival atomic.Int64

	// requiredBytes is the GPU memory needed to resume this backend: the
	// footprint recorded at swap-out time (§4.2 "saves the amount of GPU
	// memory in use").
	requiredBytes atomic.Int64

	// sleepUsed records whether the vLLM sleep-mode fast path was applied
	// at swap-out, so swap-in knows to wake the engine.
	sleepUsed atomic.Bool

	// useSleepMode enables the sleep-mode fast path for this backend.
	useSleepMode bool

	// keepWarm marks backends that skip the post-init snapshot.
	keepWarm bool

	// swapIns / swapOuts count hot-swap operations for metrics.
	swapIns  atomic.Int64
	swapOuts atomic.Int64
}

// Name returns the backend's model name.
func (b *Backend) Name() string { return b.name }

// Model returns the served model.
func (b *Backend) Model() models.Model { return b.model }

// EngineKind returns the backend's engine.
func (b *Backend) EngineKind() perfmodel.EngineKind { return b.engine }

// GPUs returns the device indices the backend spans.
func (b *Backend) GPUs() []int { return b.gpus }

// Container returns the backing container.
func (b *Backend) Container() *container.Container { return b.ctr }

// State returns the serving state.
func (b *Backend) State() BackendState { return BackendState(b.state.Load()) }

func (b *Backend) setState(s BackendState) { b.state.Store(int32(s)) }

// QueueLen returns the number of requests waiting in the backend's queue,
// the first tier of the demand-aware preemption metric (§3.5).
func (b *Backend) QueueLen() int { return len(b.queue) }

// Active returns the number of in-flight requests.
func (b *Backend) Active() int64 { return b.active.Load() }

// Pending returns the number of dequeued-but-unfinished requests.
func (b *Backend) Pending() int64 { return b.pending.Load() }

// incActive records a request entering flight. Paired with decActive.
func (b *Backend) incActive() { b.active.Add(1) }

// decActive records a request leaving flight and, when it was the last
// one, wakes any drain waiting for the backend to go idle.
func (b *Backend) decActive() {
	if b.active.Add(-1) != 0 {
		return
	}
	b.idleMu.Lock()
	if b.idleWait != nil {
		close(b.idleWait)
		b.idleWait = nil
	}
	b.idleMu.Unlock()
}

// awaitIdle blocks until the backend has no in-flight requests or ctx is
// done. It is the event-driven replacement for polling Active() in a
// sleep loop: the waiter channel is (re)armed under idleMu and re-checked
// after each wake, so a request racing in between checks is caught. The
// wait runs under gate.Block so a Virtual clock treats it as idle time.
func (b *Backend) awaitIdle(ctx context.Context, gate *simclock.Gate) error {
	for {
		b.idleMu.Lock()
		if b.active.Load() == 0 {
			b.idleMu.Unlock()
			return nil
		}
		if b.idleWait == nil {
			b.idleWait = make(chan struct{})
		}
		ch := b.idleWait
		b.idleMu.Unlock()
		cancelled := false
		gate.Block(func() {
			select {
			case <-ch:
			case <-ctx.Done():
				cancelled = true
			}
		})
		if cancelled {
			return ctx.Err()
		}
	}
}

// LastAccessed returns the most recent request arrival time.
func (b *Backend) LastAccessed() time.Time {
	return time.Unix(0, b.lastAccessed.Load())
}

// touch updates the last-accessed metadata (§4.1) and folds the observed
// inter-arrival gap into the EWMA demand predictor.
func (b *Backend) touch(t time.Time) {
	for {
		cur := b.lastAccessed.Load()
		if t.UnixNano() <= cur {
			return
		}
		if b.lastAccessed.CompareAndSwap(cur, t.UnixNano()) {
			if cur > 0 {
				gap := t.UnixNano() - cur
				old := b.ewmaInterArrival.Load()
				var next int64
				if old == 0 {
					next = gap
				} else {
					// alpha = 1/4: responsive but stable.
					next = old + (gap-old)/4
				}
				b.ewmaInterArrival.Store(next)
			}
			return
		}
	}
}

// RequiredBytes returns the GPU memory a swap-in must reserve.
func (b *Backend) RequiredBytes() int64 { return b.requiredBytes.Load() }

// SwapCounts returns the number of completed swap-ins and swap-outs.
func (b *Backend) SwapCounts() (in, out int64) {
	return b.swapIns.Load(), b.swapOuts.Load()
}

// BackendStatus is an inspection snapshot for the admin API and tools.
type BackendStatus struct {
	Name          string  `json:"name"`
	Engine        string  `json:"engine"`
	State         string  `json:"state"`
	QueueLen      int     `json:"queue_len"`
	Active        int64   `json:"active"`
	LastAccessed  string  `json:"last_accessed"`
	RequiredGiB   float64 `json:"required_gib"`
	GPUBytes      int64   `json:"gpu_bytes"`
	SwapIns       int64   `json:"swap_ins"`
	SwapOuts      int64   `json:"swap_outs"`
	ContainerID   string  `json:"container_id"`
	ContainerPort int     `json:"container_port"`
}

// Status returns the backend's current snapshot.
func (b *Backend) Status() BackendStatus {
	in, out := b.SwapCounts()
	st := BackendStatus{
		Name:         b.name,
		Engine:       string(b.engine),
		State:        b.State().String(),
		QueueLen:     b.QueueLen(),
		Active:       b.Active(),
		LastAccessed: b.LastAccessed().UTC().Format(time.RFC3339),
		RequiredGiB:  float64(b.RequiredBytes()) / float64(models.GiB),
		SwapIns:      in,
		SwapOuts:     out,
	}
	if b.ctr != nil {
		st.ContainerID = b.ctr.ID()
		st.ContainerPort = b.ctr.Port()
		if eng := b.ctr.Engine(); eng != nil {
			st.GPUBytes = eng.GPUBytes()
		}
	}
	return st
}
