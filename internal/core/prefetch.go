package core

import (
	"context"
	"sync"
	"time"

	"swapservellm/internal/cudackpt"
	"swapservellm/internal/simclock"
)

// Prefetcher is the predictive half of the autoscaling pair (§2.1): the
// reaper frees memory behind idle backends, and the prefetcher swaps
// backends in ahead of predicted demand. It tracks an EWMA of each
// backend's inter-arrival time and triggers a proactive swap-in when the
// next request is expected within the backend's estimated swap-in
// latency — hiding the restore cost off the critical path when traffic
// is periodic.
type prefetcher struct {
	s        *Server
	interval time.Duration

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// newPrefetcher builds a prefetcher sweeping every interval of simulated
// time.
func newPrefetcher(s *Server, interval time.Duration) *prefetcher {
	return &prefetcher{
		s:        s,
		interval: interval,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
}

// run is the prefetch loop; terminate with halt.
func (p *prefetcher) run() {
	defer close(p.done)
	gate := simclock.GateFor(p.s.clock)
	for gate.Wait(p.interval, p.stop) < 0 {
		p.sweep()
	}
}

// sweep triggers proactive swap-ins for backends predicted to receive a
// request before a reactive swap-in could finish.
func (p *prefetcher) sweep() {
	now := p.s.clock.Now()
	for _, b := range p.s.Backends() {
		if b.State() != BackendSwappedOut {
			continue
		}
		ewma := time.Duration(b.ewmaInterArrival.Load())
		if ewma <= 0 {
			continue // fewer than two observed arrivals
		}
		// Estimated restore cost for this backend's saved state.
		est := p.s.testbed.CheckpointRestore(b.RequiredBytes(), b.model.WeightBytes(), b.engine)
		predicted := b.LastAccessed().Add(ewma)
		// Prefetch when the predicted arrival falls within the swap-in
		// window (or is already overdue by less than one period — bursty
		// traffic often returns shortly after the EWMA point).
		if predicted.Sub(now) <= est && now.Sub(predicted) < ewma {
			b := b
			simclock.GateFor(p.s.clock).Go(func() {
				if err := p.s.sched.EnsureRunning(context.Background(), b); err == nil {
					p.s.reg.Counter("prefetch_swap_ins").Inc()
				}
			})
			continue
		}
		// Chunk warming: the predicted arrival is beyond the swap-in
		// window but within twice of it, and the snapshot sits on the
		// disk tier — promote it into host RAM now so the eventual
		// swap-in pays only the host→device copy. With the checkpoint
		// store attached the promotion moves chunks, not the image:
		// only missing chunks are fetched, each from whichever source
		// (local disk, peer RAM, peer disk) the perfmodel ranks
		// fastest, and chunks a hot image already holds in RAM are
		// deduplicated for free.
		if predicted.Sub(now) <= 2*est {
			if loc, err := p.s.driver.ImageLocation(b.ctr.ID()); err == nil && loc == cudackpt.LocDisk {
				b := b
				simclock.GateFor(p.s.clock).Go(func() {
					if err := p.s.driver.Promote(context.Background(), b.ctr.ID()); err == nil {
						p.s.reg.Counter("prefetch_chunk_promotes").Inc()
					}
				})
			}
		}
	}
}

// halt stops the prefetcher and waits for the loop to exit, shedding
// the run token while the loop goroutine drains.
func (p *prefetcher) halt() {
	p.stopOnce.Do(func() { close(p.stop) })
	simclock.GateFor(p.s.clock).Block(func() { <-p.done })
}
