package core

import (
	"bytes"
	"fmt"
	"net/http"

	"swapservellm/internal/metrics"
	"swapservellm/internal/simclock"
)

// worker is the per-model worker of §3.1 ③: it polls the backend's queue,
// coordinates swap-ins with the scheduler when the backend is not
// running, and forwards requests to the inference engine, relaying
// responses to the client without extra processing (§3.3 ⑩).
type worker struct {
	b     *Backend
	sched *Scheduler
	clock simclock.Clock
	reg   *metrics.Registry

	client *http.Client
	stop   chan struct{}
	done   chan struct{}
}

// newWorker builds a worker for b.
func newWorker(b *Backend, sched *Scheduler, clock simclock.Clock, reg *metrics.Registry) *worker {
	return &worker{
		b:      b,
		sched:  sched,
		clock:  clock,
		reg:    reg,
		client: &http.Client{},
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
}

// run is the worker loop; terminate with close(w.stop). The queue wait
// runs under the clock gate's Block so a Virtual clock knows the worker
// is idle rather than computing.
func (w *worker) run() {
	defer close(w.done)
	gate := simclock.GateFor(w.clock)
	for {
		var item *queuedRequest
		stopped := false
		gate.Block(func() {
			select {
			case <-w.stop:
				stopped = true
			case item = <-w.b.queue:
			}
		})
		if stopped {
			return
		}
		w.b.pending.Add(1)
		// Verify the client is still connected before doing any work
		// (§4.1: cancellations and timeouts are handled here).
		if item.ctx.Err() != nil {
			item.result <- forwardResult{err: item.ctx.Err()}
			w.b.pending.Add(-1)
			continue
		}
		if w.b.State() != BackendRunning {
			if err := w.sched.EnsureRunning(item.ctx, w.b); err != nil {
				item.result <- forwardResult{err: err}
				w.b.pending.Add(-1)
				continue
			}
		}
		// Forward concurrently so the worker keeps draining the queue
		// while long generations stream.
		gate.Go(func() { w.forward(item) })
	}
}

// forward sends the request to the engine and hands the live response to
// the router goroutine. The read side of the eviction lock guarantees the
// backend cannot be swapped out between the running-state check and the
// in-flight accounting (§3.5).
func (w *worker) forward(item *queuedRequest) {
	defer w.b.pending.Add(-1)
	gate := simclock.GateFor(w.clock)
	const maxAttempts = 3
	for attempt := 0; attempt < maxAttempts; attempt++ {
		// A swap-out may hold the write lock while it sleeps on the
		// clock; acquiring through the gate keeps virtual time moving.
		gate.Block(w.b.evictMu.RLock)
		if w.b.State() != BackendRunning {
			w.b.evictMu.RUnlock()
			// The backend was preempted between dequeue and forward;
			// swap it back in and retry.
			if err := w.sched.EnsureRunning(item.ctx, w.b); err != nil {
				item.result <- forwardResult{err: err}
				return
			}
			continue
		}
		w.b.incActive()
		w.b.evictMu.RUnlock()

		w.relay(item)
		w.b.decActive()
		w.b.lastFinished.Store(w.clock.Now().UnixNano())
		// The served request mutated the engine's dynamic GPU state (KV
		// cache), so the next checkpoint must re-key those chunks instead
		// of reusing the stale deduplicated content.
		w.sched.ctrl.rt.Driver().MarkDirty(w.b.ctr.ID())
		return
	}
	item.result <- forwardResult{err: fmt.Errorf("core: backend %s kept being preempted", w.b.name)}
}

// relay performs the engine HTTP call and keeps the in-flight accounting
// alive until the router finishes streaming the response to the client.
// Both waits cross real HTTP into unregistered net/http goroutines, so
// under a Virtual clock they run as BlockIO: the clock may advance while
// the engine generates, which is exactly what simulates generation
// latency.
func (w *worker) relay(item *queuedRequest) {
	url := w.b.ctr.BaseURL() + item.path
	req, err := http.NewRequestWithContext(item.ctx, http.MethodPost, url, bytes.NewReader(item.body))
	if err != nil {
		item.result <- forwardResult{err: err}
		return
	}
	req.Header.Set("Content-Type", "application/json")
	gate := simclock.GateFor(w.clock)
	var resp *http.Response
	gate.BlockIO(func() { resp, err = w.client.Do(req) })
	if err != nil {
		item.result <- forwardResult{err: err}
		return
	}
	item.result <- forwardResult{resp: resp}
	// Remain "in flight" until the response body has been fully relayed,
	// so eviction drains genuinely live streams.
	gate.BlockIO(func() {
		select {
		case <-item.done:
		case <-item.ctx.Done():
		}
	})
}
