package core

import (
	"context"
	"sync"
	"time"

	"swapservellm/internal/chaos"
	"swapservellm/internal/cudackpt"
	"swapservellm/internal/simclock"
)

// TTLPolicy decides whether an idle backend's residency should be
// reclaimed, replacing the reaper's fixed keep-alive comparison.
// internal/sched provides fixed, hit-rate-adaptive, and
// predictor-informed implementations; the interface lives here so core
// does not import sched.
type TTLPolicy interface {
	// Name identifies the policy in metrics and experiment rows.
	Name() string
	// ShouldEvict reports whether a backend for model, idle for idleFor
	// at time now, may be swapped out.
	ShouldEvict(model string, idleFor time.Duration, now time.Time) bool
	// NoteEvict records that model was evicted at now.
	NoteEvict(model string, now time.Time)
	// NoteAccess records that model was demanded while not resident (a
	// reactive swap-in) at now.
	NoteAccess(model string, now time.Time)
}

// reaper is the keep-alive idle reclaimer: backends that have served no
// request for the configured window are proactively swapped out, freeing
// GPU memory before demand forces a preemption. This generalizes
// Ollama's keep_alive behaviour (§2.3) to every engine. With a TTLPolicy
// installed the eviction choice is delegated to the policy; the fixed
// keep-alive window remains the fallback.
type reaper struct {
	s         *Server
	keepAlive time.Duration
	interval  time.Duration

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// newReaper builds a reaper that checks every interval of simulated time
// and evicts backends idle for longer than keepAlive.
func newReaper(s *Server, keepAlive, interval time.Duration) *reaper {
	return &reaper{
		s:         s,
		keepAlive: keepAlive,
		interval:  interval,
		stop:      make(chan struct{}),
		done:      make(chan struct{}),
	}
}

// run is the reaper loop; terminate with halt.
func (r *reaper) run() {
	defer close(r.done)
	gate := simclock.GateFor(r.s.clock)
	for gate.Wait(r.interval, r.stop) < 0 {
		r.sweep()
		r.demoteSweep()
	}
}

// sweep swaps out every running backend whose idle time exceeds the
// keep-alive window and which has no queued or in-flight work.
func (r *reaper) sweep() {
	if r.keepAlive <= 0 && r.s.ttl == nil {
		// The reaper is running for demoteSweep only (snapshot_demote_sec
		// without keep_alive_sec); a zero window must not evict everything.
		return
	}
	now := r.s.clock.Now()
	for _, b := range r.s.Backends() {
		if b.State() != BackendRunning || b.keepWarm {
			continue
		}
		if b.QueueLen() > 0 || b.Pending() > 0 || b.Active() > 0 {
			continue
		}
		// Idle time runs from the latest of: the last request arrival,
		// the moment the backend last became servable, and the last
		// completed request.
		idleSince := b.LastAccessed()
		for _, ns := range []int64{b.lastReady.Load(), b.lastFinished.Load()} {
			if at := time.Unix(0, ns); at.After(idleSince) {
				idleSince = at
			}
		}
		idle := now.Sub(idleSince)
		evict := idle >= r.keepAlive
		if r.s.ttl != nil {
			evict = r.s.ttl.ShouldEvict(b.name, idle, now)
		}
		// Chaos: a fired sched.evict inverts the decision — a premature
		// reclaim or a leaked residency, depending on which way it flips.
		// Only the idle-time judgement is invertible; busy backends were
		// already excluded above.
		if out := r.s.chaosInj.At(chaos.SiteSchedEvict); out.Err != nil {
			evict = !evict
		}
		if !evict {
			continue
		}
		// Best effort: a losing race with an arriving request just means
		// the swap-out fails its state check or the next request swaps
		// the backend back in.
		if err := r.s.ctrl.SwapOut(context.Background(), b); err == nil {
			r.s.reg.Counter("idle_reaps").Inc()
			if r.s.ttl != nil {
				r.s.ttl.NoteEvict(b.name, now)
			}
		}
	}
}

// demoteSweep is the second rung of the tier ladder: snapshots that the
// first sweep already evicted to host RAM and that have then sat unused
// for snapshot_demote_sec are pushed down to the disk tier, freeing host
// memory for hotter images. With the checkpoint store attached the
// demotion is chunk-aware — chunks shared with a still-resident image
// keep their host copy — and the prefetcher promotes chunks back ahead
// of predicted demand.
func (r *reaper) demoteSweep() {
	sec := r.s.cfg.Global.SnapshotDemoteSec
	if sec <= 0 {
		return
	}
	after := time.Duration(sec * float64(time.Second))
	now := r.s.clock.Now()
	for _, snap := range r.s.driver.Snapshots() {
		if snap.Loc != cudackpt.LocRAM || now.Sub(snap.LastUsed) < after {
			continue
		}
		// Best effort: a demote racing a restore fails its state check.
		if err := r.s.driver.Demote(context.Background(), snap.PID); err == nil {
			r.s.reg.Counter("idle_demotions").Inc()
		}
	}
}

// halt stops the reaper and waits for the loop to exit. The receive
// sheds the run token: the loop goroutine is a gate participant and
// must be allowed to advance the clock to reach its exit.
func (r *reaper) halt() {
	r.stopOnce.Do(func() { close(r.stop) })
	simclock.GateFor(r.s.clock).Block(func() { <-r.done })
}
