package core

import (
	"context"
	"fmt"
	"sync"
	"time"

	"swapservellm/internal/container"
	"swapservellm/internal/cudackpt"
	"swapservellm/internal/engine"
	"swapservellm/internal/metrics"
	"swapservellm/internal/obs"
	"swapservellm/internal/openai"
	"swapservellm/internal/perfmodel"
	"swapservellm/internal/retry"
	"swapservellm/internal/simclock"
)

// Controller is the engine controller of §3.1: it executes swap-in and
// swap-out operations against the container runtime and the GPU
// checkpoint driver, applies engine-specific optimizations (vLLM sleep
// mode), and implements the demand-aware preemption policy on behalf of
// the task manager.
type Controller struct {
	clock   simclock.Clock
	testbed perfmodel.Testbed
	rt      *container.Runtime
	tm      *TaskManager
	policy  PreemptionPolicy
	reg     *metrics.Registry
	tracer  *obs.Tracer

	// backends enumerates swap candidates; installed by the server.
	mu       sync.Mutex
	backends map[string]*Backend

	// evictSerial serializes evictions per device so concurrent reclaim
	// loops on the same GPU do not stampede the same candidates, while
	// evictions on unrelated devices proceed in parallel.
	evictSerialMu sync.Mutex
	evictSerial   map[int]*sync.Mutex

	// pipelined selects the full-duplex SwapExchange fast path: the
	// target's restore starts as soon as the victim's checkpoint frees
	// its first chunks, instead of after the checkpoint completes.
	pipelined bool
}

// ControllerOption configures a Controller at construction.
type ControllerOption func(*Controller)

// WithTestbed sets the calibrated hardware profile the controller times
// operations against.
func WithTestbed(tb perfmodel.Testbed) ControllerOption {
	return func(ct *Controller) { ct.testbed = tb }
}

// WithRuntime sets the container runtime the controller drives.
func WithRuntime(rt *container.Runtime) ControllerOption {
	return func(ct *Controller) { ct.rt = rt }
}

// WithTaskManager sets the GPU-memory reservation manager.
func WithTaskManager(tm *TaskManager) ControllerOption {
	return func(ct *Controller) { ct.tm = tm }
}

// WithPolicy sets the preemption policy (default DemandAwarePolicy).
func WithPolicy(p PreemptionPolicy) ControllerOption {
	return func(ct *Controller) {
		if p != nil {
			ct.policy = p
		}
	}
}

// WithRegistry sets the metrics registry (default: a fresh one).
func WithRegistry(reg *metrics.Registry) ControllerOption {
	return func(ct *Controller) {
		if reg != nil {
			ct.reg = reg
		}
	}
}

// WithTracer sets the swap-lifecycle tracer. Swap operations entered
// with a context that carries no tracer are recorded against this one,
// so admin-triggered and reaper-triggered swaps appear in /debug/trace
// alongside request-triggered ones.
func WithTracer(tr *obs.Tracer) ControllerOption {
	return func(ct *Controller) { ct.tracer = tr }
}

// NewController builds a controller from its clock plus functional
// options — the dependency set grew past the point where positional
// parameters stayed readable. The server registers backends as it
// creates them.
func NewController(clock simclock.Clock, opts ...ControllerOption) *Controller {
	ct := &Controller{
		clock:       clock,
		policy:      DemandAwarePolicy{},
		reg:         metrics.NewRegistry(),
		backends:    make(map[string]*Backend),
		evictSerial: make(map[int]*sync.Mutex),
	}
	for _, opt := range opts {
		opt(ct)
	}
	return ct
}

// NewControllerDeps is the positional compatibility constructor kept
// for tests that predate the options API. New code should use
// NewController with options.
func NewControllerDeps(clock simclock.Clock, tb perfmodel.Testbed, rt *container.Runtime,
	tm *TaskManager, policy PreemptionPolicy, reg *metrics.Registry) *Controller {
	return NewController(clock,
		WithTestbed(tb), WithRuntime(rt), WithTaskManager(tm),
		WithPolicy(policy), WithRegistry(reg))
}

// traceCtx installs the controller's configured tracer on ctx when the
// caller did not bring one, so every swap entry point is traceable.
func (ct *Controller) traceCtx(ctx context.Context) context.Context {
	if ct.tracer != nil && obs.TracerFrom(ctx) == nil {
		return obs.WithTracer(ctx, ct.tracer)
	}
	return ctx
}

// SetPipelined selects between the sequential swap path (checkpoint the
// victim fully, then restore the target) and the pipelined full-duplex
// path in SwapExchange. Sequential remains the A/B baseline.
func (ct *Controller) SetPipelined(on bool) {
	ct.mu.Lock()
	defer ct.mu.Unlock()
	ct.pipelined = on
}

// Pipelined reports whether the full-duplex exchange path is selected.
func (ct *Controller) Pipelined() bool {
	ct.mu.Lock()
	defer ct.mu.Unlock()
	return ct.pipelined
}

// evictLock returns the per-device eviction mutex, creating it on first
// use.
//
//swaplint:lockclass core.Controller.evictSerial
func (ct *Controller) evictLock(gpuID int) *sync.Mutex {
	ct.evictSerialMu.Lock()
	defer ct.evictSerialMu.Unlock()
	m, ok := ct.evictSerial[gpuID]
	if !ok {
		m = &sync.Mutex{}
		ct.evictSerial[gpuID] = m
	}
	return m
}

// RegisterBackend adds a backend to the controller's candidate set.
func (ct *Controller) RegisterBackend(b *Backend) {
	ct.mu.Lock()
	defer ct.mu.Unlock()
	ct.backends[b.name] = b
}

// Policy returns the active preemption policy.
func (ct *Controller) Policy() PreemptionPolicy { return ct.policy }

// SwapOut suspends a running backend (§4.2 Model Preemption): write-lock
// it against new requests, drain in-flight ones, apply the sleep-mode
// optimization when available, freeze the container's cgroup, and create
// the in-memory GPU snapshot, freeing device capacity.
func (ct *Controller) SwapOut(ctx context.Context, b *Backend) (err error) {
	ctx = ct.traceCtx(ctx)
	ctx, span := obs.Start(ctx, "swap.out", obs.String("model", b.name))
	defer func() { span.EndErr(err) }()
	// The write lock stops workers from forwarding new requests (§3.5).
	// Acquired through the gate: the current holder may be asleep on the
	// clock, and a blocked write-lock waiter must not freeze virtual time.
	simclock.GateFor(ct.clock).Block(b.evictMu.Lock)
	defer b.evictMu.Unlock()

	if s := b.State(); s != BackendRunning {
		return fmt.Errorf("core: swap-out of backend %s in state %v", b.name, s)
	}
	b.setState(BackendSwapping)

	// Drain in-flight requests so the freeze does not strand live streams.
	if err := ct.drain(ctx, b); err != nil {
		b.setState(BackendRunning)
		return err
	}

	// Record the running footprint: the memory a future swap-in must
	// reserve (§4.2 "saves the amount of GPU memory in use").
	eng := b.ctr.Engine()
	running := eng.GPUBytes()
	b.requiredBytes.Store(running)

	// Engine-specific optimization: vLLM's sleep API offloads weights and
	// discards the KV cache, shrinking the checkpoint (§4.2).
	b.sleepUsed.Store(false)
	if sleeper, ok := eng.(engine.Sleeper); ok && b.useSleepMode {
		if err := sleeper.Sleep(ctx, 1); err == nil {
			b.sleepUsed.Store(true)
		}
	}

	// Freeze CPU execution, then checkpoint the GPU state.
	if err := ct.rt.Pause(ctx, b.ctr); err != nil {
		ct.wakeIfSlept(ctx, b, eng)
		b.setState(BackendRunning)
		return fmt.Errorf("core: pausing container: %w", err)
	}
	t0 := ct.clock.Now()
	saved, err := ct.rt.Driver().Suspend(ctx, b.ctr.ID())
	if err != nil {
		// Roll back to a serving backend: thaw the container (retrying
		// past transient faults) and undo the sleep-mode offload. A thaw
		// that keeps failing leaves the engine frozen, so the backend is
		// unusable and must be marked failed rather than Running. The
		// rollback runs even when ctx was the cause of the abort.
		rbCtx := context.WithoutCancel(ctx)
		if uerr := retryTransient(func() error { return ct.rt.Unpause(rbCtx, b.ctr) }); uerr != nil {
			b.setState(BackendFailed)
			return fmt.Errorf("core: checkpointing GPU state: %w (rollback thaw failed: %w)", err, uerr)
		}
		ct.wakeIfSlept(ctx, b, eng)
		b.setState(BackendRunning)
		return fmt.Errorf("core: checkpointing GPU state: %w", err)
	}
	ct.reg.Histogram("swap_out_latency").Observe(ct.clock.Since(t0))
	ct.reg.Counter("swap_outs").Inc()
	ct.reg.Gauge("snapshot_bytes_" + b.name).Set(float64(saved))

	b.setState(BackendSwappedOut)
	b.swapOuts.Add(1)
	// Wake any reservation waiting on the freed memory.
	ct.tm.NotifyFreed()
	return nil
}

// drain waits until the backend has no in-flight requests. Completion is
// event-driven: the last in-flight request wakes the waiter directly
// (Backend.decActive), so there is no polling interval between the final
// response and the start of the checkpoint.
func (ct *Controller) drain(ctx context.Context, b *Backend) error {
	return b.awaitIdle(ctx, simclock.GateFor(ct.clock))
}

// SwapIn resumes a swapped-out backend (§3.3 ⑨): restore the GPU state
// from the host snapshot, thaw the cgroup, apply the engine wake-up, and
// verify the engine API is live. The caller must hold a memory
// reservation covering RequiredBytes.
func (ct *Controller) SwapIn(ctx context.Context, b *Backend) (err error) {
	ctx = ct.traceCtx(ctx)
	ctx, span := obs.Start(ctx, "swap.in", obs.String("model", b.name))
	defer func() { span.EndErr(err) }()
	if s := b.State(); s != BackendSwappedOut {
		return fmt.Errorf("core: swap-in of backend %s in state %v", b.name, s)
	}
	b.setState(BackendSwapping)
	t0 := ct.clock.Now()

	// Restore device state and resume the CUDA process.
	if err := ct.rt.Driver().Resume(ctx, b.ctr.ID()); err != nil {
		return ct.failBack(ctx, b, "restoring GPU state", err)
	}
	// Thaw the container. A failed thaw leaves it paused, so retrying is
	// safe and far cheaper than rolling the whole restore back.
	if err := retryTransient(func() error { return ct.rt.Unpause(ctx, b.ctr) }); err != nil {
		return ct.failBack(ctx, b, "unpausing container", err)
	}
	// Engine-specific wake-up after a sleep-mode swap-out.
	if b.sleepUsed.Load() {
		if sleeper, ok := b.ctr.Engine().(engine.Sleeper); ok {
			if err := sleeper.Wake(ctx); err != nil {
				return ct.failBack(ctx, b, "waking engine", err)
			}
		}
		b.sleepUsed.Store(false)
	}
	// Engine resume overhead (API liveness verification, §3.3 ⑩).
	ct.clock.Sleep(perfmodel.EngineResumeOverhead(b.engine))
	if err := ct.verifyAPI(ctx, b); err != nil {
		return ct.failBack(ctx, b, "engine API not live after swap-in", err)
	}

	ct.reg.Histogram("swap_in_latency").Observe(ct.clock.Since(t0))
	ct.reg.Counter("swap_ins").Inc()
	b.lastReady.Store(ct.clock.Now().UnixNano())
	b.setState(BackendRunning)
	b.swapIns.Add(1)
	return nil
}

// failBack rolls a half-swapped-in backend back to a consistent
// swapped-out state after a mid-swap-in failure. Depending on how far
// the swap-in got, the driver may be Checkpointed (restore never
// happened), Locked (restore done, unlock failed), or Running (fully
// resumed but a later step failed) — each needs a different path back
// to Checkpointed. The rollback is what keeps the system's two views
// consistent: a backend reported SwappedOut must have its image in host
// memory, not its state on the device. The rollback ignores ctx's
// cancellation (it must run precisely when ctx is what failed the
// swap-in) but keeps its trace span, so aborted swaps show their
// rollback steps.
func (ct *Controller) failBack(ctx context.Context, b *Backend, stage string, cause error) error {
	rbCtx := context.WithoutCancel(ctx)
	id := b.ctr.ID()
	st, serr := ct.rt.Driver().State(id)
	var rbErr error
	if serr != nil {
		rbErr = serr
	} else {
		switch st {
		case cudackpt.StateCheckpointed:
			// Nothing moved; already consistent.
		case cudackpt.StateLocked:
			rbErr = retryTransient(func() error {
				_, err := ct.rt.Driver().Checkpoint(rbCtx, id)
				return err
			})
		case cudackpt.StateRunning:
			// Refreeze the CPU side if it was thawed, then re-suspend.
			if b.ctr.State() == container.StateRunning {
				rbErr = retryTransient(func() error { return ct.rt.Pause(rbCtx, b.ctr) })
			}
			if rbErr == nil {
				rbErr = retryTransient(func() error {
					_, err := ct.rt.Driver().Suspend(rbCtx, id)
					return err
				})
			}
		}
	}
	if rbErr != nil {
		b.setState(BackendFailed)
		return fmt.Errorf("core: %s: %w (rollback failed: %w)", stage, cause, rbErr)
	}
	b.setState(BackendSwappedOut)
	// The device capacity the failed swap-in had claimed is free again.
	ct.tm.NotifyFreed()
	return fmt.Errorf("core: %s: %w", stage, cause)
}

// retryTransient retries op a few times, for rollback steps that must
// not give up on a single transient (often injected) fault. It is the
// shared helper from internal/retry — the driver's Suspend unlock
// rollback uses the same one.
func retryTransient(op func() error) error {
	return retry.Transient(op)
}

// wakeIfSlept undoes a sleep-mode offload during swap-out rollback.
func (ct *Controller) wakeIfSlept(ctx context.Context, b *Backend, eng engine.Engine) {
	if !b.sleepUsed.Load() {
		return
	}
	if sleeper, ok := eng.(engine.Sleeper); ok {
		sleeper.Wake(ctx)
	}
	b.sleepUsed.Store(false)
}

// verifyAPI polls the engine's health endpoint until it responds.
func (ct *Controller) verifyAPI(ctx context.Context, b *Backend) error {
	cli := openai.NewClient(b.ctr.BaseURL())
	cli.Clock = ct.clock
	hctx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	return cli.WaitHealthy(hctx, 2*time.Millisecond)
}

// EvictOne implements Evictor: pick the policy's best candidate among
// running backends on the device and swap it out.
func (ct *Controller) EvictOne(ctx context.Context, gpuID int, exclude map[string]bool) (int64, bool) {
	lock := ct.evictLock(gpuID)
	// Held across SwapOut's simulated transfer, so acquire through the
	// gate: a waiter must not pin virtual time while the holder sleeps.
	simclock.GateFor(ct.clock).Block(lock.Lock)
	defer lock.Unlock()

	cand, ok := ct.selectCandidate(gpuID, exclude)
	if !ok {
		return 0, false
	}
	ct.mu.Lock()
	b := ct.backends[cand.Name]
	ct.mu.Unlock()
	if b == nil {
		return 0, false
	}
	if err := ct.SwapOut(ctx, b); err != nil {
		return 0, false
	}
	return cand.FreeableBytes, true
}

// selectCandidate builds the candidate list for a device and applies the
// policy.
func (ct *Controller) selectCandidate(gpuID int, exclude map[string]bool) (Candidate, bool) {
	ct.mu.Lock()
	defer ct.mu.Unlock()
	var cands []Candidate
	for name, b := range ct.backends {
		if exclude[name] || b.State() != BackendRunning {
			continue
		}
		if !backendOnGPU(b, gpuID) {
			continue
		}
		cands = append(cands, Candidate{
			Name: name,
			// Queued plus dequeued/in-flight requests: all represent
			// ongoing user interactions a preemption would disrupt (§3.5).
			QueueLen:          b.QueueLen() + int(b.Pending()),
			LastAccessedNanos: b.lastAccessed.Load(),
			FreeableBytes:     b.ctr.Engine().GPUBytes(),
		})
	}
	return ct.policy.Select(cands)
}

// backendOnGPU reports whether the backend occupies the given device.
func backendOnGPU(b *Backend, gpuID int) bool {
	for _, id := range b.gpus {
		if id == gpuID {
			return true
		}
	}
	return false
}
