package core

import (
	"context"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"swapservellm/internal/config"
	"swapservellm/internal/openai"
	"swapservellm/internal/simclock"
)

// TestResponseTimeoutEndToEnd: a tiny response timeout expires while the
// backend is still swapping in, yielding a 504.
func TestResponseTimeoutEndToEnd(t *testing.T) {
	cfg := config.Default()
	// 0.5 simulated seconds: far below the ~4.7s swap-in of the 14B model.
	cfg.Global.ResponseTimeoutSec = 0.5
	cfg.Models = []config.Model{ollamaModel("deepseek-r1:14b-fp16")}
	s := startServer(t, cfg, Options{Clock: simclock.NewScaled(testEpoch, 500)})

	seed := int64(1)
	_, err := openai.NewClient(s.URL()).ChatCompletion(context.Background(),
		&openai.ChatCompletionRequest{
			Model:     "deepseek-r1:14b-fp16",
			Messages:  []openai.Message{{Role: "user", Content: "x"}},
			Seed:      &seed,
			MaxTokens: 2,
		})
	apiErr, ok := err.(*openai.APIError)
	if !ok || apiErr.Type != "timeout" {
		t.Fatalf("err = %v, want timeout", err)
	}
	if s.Registry().Counter("requests_total").Value() != 1 {
		t.Fatal("request not counted")
	}
}

// TestClientCancelBeforeDequeue: a request cancelled while queued is
// discarded by the worker's liveness check without touching the engine.
func TestClientCancelBeforeDequeue(t *testing.T) {
	s := testServer(t, 500, ollamaModel("deepseek-r1:14b-fp16"))
	// First request occupies the worker with a multi-second swap-in; a
	// second, immediately-cancelled request sits in the queue behind it.
	first := make(chan error, 1)
	go func() {
		seed := int64(1)
		_, err := openai.NewClient(s.URL()).ChatCompletion(context.Background(),
			&openai.ChatCompletionRequest{
				Model:     "deepseek-r1:14b-fp16",
				Messages:  []openai.Message{{Role: "user", Content: "warm"}},
				Seed:      &seed,
				MaxTokens: 1,
			})
		first <- err
	}()
	time.Sleep(2 * time.Millisecond)

	ctx, cancel := context.WithCancel(context.Background())
	cancel() // cancelled before the worker can dequeue it
	seed := int64(2)
	_, err := openai.NewClient(s.URL()).ChatCompletion(ctx, &openai.ChatCompletionRequest{
		Model:     "deepseek-r1:14b-fp16",
		Messages:  []openai.Message{{Role: "user", Content: "x"}},
		Seed:      &seed,
		MaxTokens: 2,
	})
	if err == nil {
		t.Fatal("cancelled request succeeded")
	}
	if err := <-first; err != nil {
		t.Fatalf("first request failed: %v", err)
	}
}

// TestAdminSwapOutBusyConflict: an explicit swap-out of a backend with an
// in-flight stream conflicts cleanly (409) once drain gives up on the
// caller's context... the drain waits, so use a short request context via
// the admin HTTP call racing a long stream.
func TestMetricsAfterTraffic(t *testing.T) {
	s := testServer(t, 5000, ollamaModel("llama3.2:1b-fp16"))
	doChat(t, s.URL(), "llama3.2:1b-fp16", 2)
	doChat(t, s.URL(), "llama3.2:1b-fp16", 2)
	resp, err := http.Get(s.URL() + "/metrics.csv")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	buf := new(strings.Builder)
	if _, err := ioCopy(buf, resp.Body); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"counter,requests_total,value,2",
		"histogram,swap_in_latency,count,1",
		"histogram,request_latency,count,2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// TestBackendStatusFields sanity-checks the admin snapshot after churn.
func TestBackendStatusFields(t *testing.T) {
	s := testServer(t, 5000, ollamaModel("llama3.2:1b-fp16"))
	doChat(t, s.URL(), "llama3.2:1b-fp16", 2)
	b, _ := s.Backend("llama3.2:1b-fp16")
	st := b.Status()
	if st.Name != "llama3.2:1b-fp16" || st.Engine != "ollama" {
		t.Fatalf("identity: %+v", st)
	}
	if st.SwapIns != 1 || st.SwapOuts != 1 {
		t.Fatalf("swap counts: %+v", st)
	}
	if st.ContainerID == "" || st.ContainerPort == 0 {
		t.Fatalf("container fields: %+v", st)
	}
	if st.RequiredGiB < 3 || st.RequiredGiB > 4.5 {
		t.Fatalf("required GiB: %v", st.RequiredGiB)
	}
	if st.State != "running" {
		t.Fatalf("state: %s", st.State)
	}
}

// ioCopy is a tiny io.Copy indirection so the test file reads cleanly.
func ioCopy(dst io.Writer, src io.Reader) (int64, error) { return io.Copy(dst, src) }
