package core

import (
	"time"
)

// ModelInventory is one backend's node-local serving and snapshot state:
// what the cluster layer needs to make locality-aware placement
// decisions (a warm backend beats a RAM snapshot beats a disk-spilled
// one) and what the rebalancer needs to migrate cold images.
type ModelInventory struct {
	// Model is the backend's model name.
	Model string `json:"model"`
	// Engine is the backend's engine kind.
	Engine string `json:"engine"`
	// State is the backend's serving state string.
	State string `json:"state"`
	// Warm reports whether the backend is resident and servable without a
	// swap-in.
	Warm bool `json:"warm"`
	// SnapshotLoc is where the checkpoint image resides when swapped out:
	// "ram", "disk", or "" when no image exists.
	SnapshotLoc string `json:"snapshot_loc,omitempty"`
	// SnapshotBytes is the checkpoint image size (zero unless swapped
	// out).
	SnapshotBytes int64 `json:"snapshot_bytes,omitempty"`
	// RequiredBytes is the GPU memory a swap-in must reserve.
	RequiredBytes int64 `json:"required_bytes"`
	// QueueLen, Pending, and Active describe outstanding work: queued,
	// dequeued-but-unforwarded, and in-flight requests.
	QueueLen int   `json:"queue_len"`
	Pending  int64 `json:"pending"`
	Active   int64 `json:"active"`
	// LastAccessed is the most recent request arrival.
	LastAccessed time.Time `json:"last_accessed"`
}

// Load is the backend's outstanding work: the queue depth plus dequeued
// and in-flight requests.
func (mi ModelInventory) Load() int {
	return mi.QueueLen + int(mi.Pending) + int(mi.Active)
}

// Inventory reports every backend's serving state and snapshot
// placement, sorted by model name. This is the node-local inventory the
// cluster's placement engine and rebalancer consume.
func (s *Server) Inventory() []ModelInventory {
	backends := s.Backends()
	out := make([]ModelInventory, 0, len(backends))
	for _, b := range backends {
		mi := ModelInventory{
			Model:         b.name,
			Engine:        string(b.engine),
			State:         b.State().String(),
			Warm:          b.State() == BackendRunning,
			RequiredBytes: b.RequiredBytes(),
			QueueLen:      b.QueueLen(),
			Pending:       b.Pending(),
			Active:        b.Active(),
			LastAccessed:  b.LastAccessed(),
		}
		if b.State() == BackendSwappedOut && b.ctr != nil {
			if bytes, err := s.driver.ImageBytes(b.ctr.ID()); err == nil && bytes > 0 {
				mi.SnapshotBytes = bytes
				if loc, err := s.driver.ImageLocation(b.ctr.ID()); err == nil {
					mi.SnapshotLoc = loc.String()
				}
			}
		}
		out = append(out, mi)
	}
	return out
}

// GPUFree returns the total free GPU memory across the node's topology.
func (s *Server) GPUFree() int64 { return s.topo.TotalFree() }

// GPUTotal returns the total GPU memory across the node's topology.
func (s *Server) GPUTotal() int64 {
	var total int64
	for _, d := range s.topo.Devices() {
		total += d.Total()
	}
	return total
}
