package core

import (
	"context"
	"errors"
	"testing"

	"swapservellm/internal/chaos"
	"swapservellm/internal/config"
	"swapservellm/internal/cudackpt"
	"swapservellm/internal/openai"
	"swapservellm/internal/simclock"
)

// TestSwapInFailureRecovers injects a driver restore fault: the first
// request fails with a backend error, the backend stays swapped out with
// its snapshot intact, and the next request succeeds.
func TestSwapInFailureRecovers(t *testing.T) {
	s := testServer(t, 5000, ollamaModel("llama3.2:1b-fp16"))
	b, _ := s.Backend("llama3.2:1b-fp16")
	s.Driver().SetChaos(chaos.FailNext(chaos.SiteCkptRestore, 1))

	seed := int64(1)
	_, err := openai.NewClient(s.URL()).ChatCompletion(context.Background(),
		&openai.ChatCompletionRequest{
			Model:     "llama3.2:1b-fp16",
			Messages:  []openai.Message{{Role: "user", Content: "x"}},
			Seed:      &seed,
			MaxTokens: 2,
		})
	if err == nil {
		t.Fatal("request succeeded despite injected restore fault")
	}

	// The backend must have rolled back to swapped-out with its snapshot.
	if b.State() != BackendSwappedOut {
		t.Fatalf("state after failed swap-in = %v", b.State())
	}
	img, ierr := s.Driver().ImageBytes(b.Container().ID())
	if ierr != nil || img == 0 {
		t.Fatalf("snapshot lost after failed restore: %d, %v", img, ierr)
	}
	// No reservation headroom leaked.
	if got := s.TaskManager().Reserved(0); got != 0 {
		t.Fatalf("leaked reservation: %d", got)
	}

	// The fault was one-shot: the next request swaps in and serves.
	doChat(t, s.URL(), "llama3.2:1b-fp16", 2)
	if b.State() != BackendRunning {
		t.Fatalf("state after retry = %v", b.State())
	}
}

// TestSwapOutFailureKeepsServing injects a checkpoint fault during an
// explicit swap-out: the operation fails, but the backend remains running
// and continues to serve.
func TestSwapOutFailureKeepsServing(t *testing.T) {
	m := ollamaModel("llama3.2:1b-fp16")
	m.KeepWarm = true
	s := testServer(t, 5000, m)
	b, _ := s.Backend("llama3.2:1b-fp16")

	s.Driver().SetChaos(chaos.FailNext(chaos.SiteCkptCheckpoint, 1))
	err := s.Controller().SwapOut(context.Background(), b)
	if !errors.Is(err, chaos.ErrInjected) {
		t.Fatalf("swap-out error = %v, want injected", err)
	}
	if b.State() != BackendRunning {
		t.Fatalf("state after failed swap-out = %v", b.State())
	}
	// Device memory intact and serving works.
	if b.Container().Engine().GPUBytes() == 0 {
		t.Fatal("engine lost its GPU memory after failed swap-out")
	}
	doChat(t, s.URL(), "llama3.2:1b-fp16", 2)
}

// TestLockFaultDuringSwapOut covers the earliest failure point: the CUDA
// lock itself fails; the suspend rolls back and the backend keeps
// serving.
func TestLockFaultDuringSwapOut(t *testing.T) {
	m := ollamaModel("llama3.2:1b-fp16")
	m.KeepWarm = true
	s := testServer(t, 5000, m)
	b, _ := s.Backend("llama3.2:1b-fp16")

	s.Driver().SetChaos(chaos.FailNext(chaos.SiteCkptLock, 1))
	if err := s.Controller().SwapOut(context.Background(), b); !errors.Is(err, chaos.ErrInjected) {
		t.Fatalf("swap-out error = %v, want injected", err)
	}
	if b.State() != BackendRunning {
		t.Fatalf("state = %v", b.State())
	}
	// A later swap-out works.
	if err := s.Controller().SwapOut(context.Background(), b); err != nil {
		t.Fatalf("swap-out after fault cleared: %v", err)
	}
	if b.State() != BackendSwappedOut {
		t.Fatalf("state = %v", b.State())
	}
}

// TestThawFaultDuringSwapIn: the cgroup thaw fails after a successful
// GPU restore. The controller must roll the driver back to Checkpointed
// (re-suspend) so the backend's SwappedOut state stays consistent with
// the driver, and the next request must recover.
func TestThawFaultDuringSwapIn(t *testing.T) {
	s := testServer(t, 5000, ollamaModel("llama3.2:1b-fp16"))
	b, _ := s.Backend("llama3.2:1b-fp16")
	// Unpause retries past transient faults, so arm enough thaw failures
	// to exhaust the retry budget and fail the whole swap-in.
	s.Freezer().SetChaos(chaos.FailNext(chaos.SiteCgroupThaw, 4))

	seed := int64(1)
	_, err := openai.NewClient(s.URL()).ChatCompletion(context.Background(),
		&openai.ChatCompletionRequest{
			Model:     "llama3.2:1b-fp16",
			Messages:  []openai.Message{{Role: "user", Content: "x"}},
			Seed:      &seed,
			MaxTokens: 2,
		})
	if err == nil {
		t.Fatal("request succeeded despite injected thaw faults")
	}
	if b.State() != BackendSwappedOut {
		t.Fatalf("state after failed swap-in = %v", b.State())
	}
	// The rollback must have re-checkpointed the GPU state, keeping the
	// backend/driver views consistent.
	if ds, _ := s.Driver().State(b.Container().ID()); ds != cudackpt.StateCheckpointed {
		t.Fatalf("driver state after rollback = %v", ds)
	}
	if got := s.TaskManager().Reserved(0); got != 0 {
		t.Fatalf("leaked reservation: %d", got)
	}
	doChat(t, s.URL(), "llama3.2:1b-fp16", 2)
	if b.State() != BackendRunning {
		t.Fatalf("state after retry = %v", b.State())
	}
}

// TestFreezeFaultDuringSwapOut: the cgroup freeze fails before the
// checkpoint; the backend must stay running and keep serving.
func TestFreezeFaultDuringSwapOut(t *testing.T) {
	m := ollamaModel("llama3.2:1b-fp16")
	m.KeepWarm = true
	s := testServer(t, 5000, m)
	b, _ := s.Backend("llama3.2:1b-fp16")

	s.Freezer().SetChaos(chaos.FailNext(chaos.SiteCgroupFreeze, 1))
	if err := s.Controller().SwapOut(context.Background(), b); !errors.Is(err, chaos.ErrInjected) {
		t.Fatalf("swap-out error = %v, want injected", err)
	}
	if b.State() != BackendRunning {
		t.Fatalf("state after failed swap-out = %v", b.State())
	}
	doChat(t, s.URL(), "llama3.2:1b-fp16", 2)
}

// TestPreemptionSurvivesRestoreFault: a fault during a preemption-driven
// swap-in must not wedge the reservation queue — the retry path recovers.
func TestPreemptionSurvivesRestoreFault(t *testing.T) {
	cfg := config.Default()
	cfg.Models = []config.Model{
		vllmModel("llama3.2:1b-fp16"),
		vllmModel("llama3.2:3b-fp16"),
	}
	s, err := New(cfg, Options{Clock: simclock.NewScaled(testEpoch, 20000)})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer s.Shutdown()

	// Serve A so B's swap-in needs a preemption; fault B's first restore.
	doChat(t, s.URL(), "llama3.2:1b-fp16", 1)
	s.Driver().SetChaos(chaos.FailNext(chaos.SiteCkptRestore, 1))
	seed := int64(1)
	_, err = openai.NewClient(s.URL()).ChatCompletion(context.Background(),
		&openai.ChatCompletionRequest{
			Model:     "llama3.2:3b-fp16",
			Messages:  []openai.Message{{Role: "user", Content: "x"}},
			Seed:      &seed,
			MaxTokens: 1,
		})
	if err == nil {
		t.Fatal("request succeeded despite injected fault")
	}
	// Recovery: B serves on retry.
	doChat(t, s.URL(), "llama3.2:3b-fp16", 1)
	bb, _ := s.Backend("llama3.2:3b-fp16")
	if bb.State() != BackendRunning {
		t.Fatalf("state = %v", bb.State())
	}
	if got := s.TaskManager().Reserved(0); got != 0 {
		t.Fatalf("leaked reservation: %d", got)
	}
}
