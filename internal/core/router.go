package core

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"

	"swapservellm/internal/obs"
	"swapservellm/internal/openai"
)

// router is the OpenAI API router of §3.1 ①: a proxy multiplexing
// inference requests across models and engines. It validates payloads,
// resolves the backend, and enqueues requests for the model workers,
// relaying responses (including SSE streams) back to clients.
type router struct {
	s *Server
}

// handler builds the router's http.Handler.
func (rt *router) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/chat/completions", rt.auth(rt.proxy("/v1/chat/completions", validateChat)))
	mux.HandleFunc("/v1/completions", rt.auth(rt.proxy("/v1/completions", validateCompletion)))
	mux.HandleFunc("/v1/models", rt.auth(rt.listModels))
	mux.HandleFunc("/health", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/admin/status", rt.auth(rt.adminStatus))
	mux.HandleFunc("/admin/inventory", rt.auth(rt.adminInventory))
	mux.HandleFunc("/admin/swap-in", rt.auth(rt.adminSwap(true)))
	mux.HandleFunc("/admin/swap-out", rt.auth(rt.adminSwap(false)))
	mux.HandleFunc("/metrics", rt.auth(rt.metricsProm))
	mux.HandleFunc("/metrics.csv", rt.auth(rt.metricsCSV))
	mux.Handle("/debug/trace", rt.s.tracer.Handler())
	return mux
}

// auth enforces the optional bearer token.
func (rt *router) auth(next http.HandlerFunc) http.HandlerFunc {
	token := rt.s.cfg.Global.AuthToken
	if token == "" {
		return next
	}
	return func(w http.ResponseWriter, r *http.Request) {
		got := strings.TrimPrefix(r.Header.Get("Authorization"), "Bearer ")
		if got != token {
			openai.WriteError(w, http.StatusUnauthorized, "invalid_api_key", "invalid or missing API key")
			return
		}
		next(w, r)
	}
}

// maxBodyBytes bounds request payloads (1 MiB covers any chat request).
const maxBodyBytes = 1 << 20

// validateChat checks a chat-completions payload and extracts the model.
func validateChat(body []byte) (string, error) {
	var req openai.ChatCompletionRequest
	if err := json.Unmarshal(body, &req); err != nil {
		return "", fmt.Errorf("malformed JSON: %w", err)
	}
	if err := req.Validate(); err != nil {
		return "", err
	}
	return req.Model, nil
}

// validateCompletion checks a legacy completions payload and extracts the
// model.
func validateCompletion(body []byte) (string, error) {
	var req openai.CompletionRequest
	if err := json.Unmarshal(body, &req); err != nil {
		return "", fmt.Errorf("malformed JSON: %w", err)
	}
	if err := req.Validate(); err != nil {
		return "", err
	}
	return req.Model, nil
}

// proxy accepts an inference request on path, queues it for the model's
// worker, and relays the backend's response.
func (rt *router) proxy(path string, validate func([]byte) (string, error)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		rt.serveProxy(w, r, path, validate)
	}
}

func (rt *router) serveProxy(w http.ResponseWriter, r *http.Request, path string, validate func([]byte) (string, error)) {
	if r.Method != http.MethodPost {
		openai.WriteError(w, http.StatusMethodNotAllowed, "invalid_request_error", "use POST")
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, maxBodyBytes))
	if err != nil {
		openai.WriteError(w, http.StatusBadRequest, "invalid_request_error", "reading body: "+err.Error())
		return
	}
	model, err := validate(body)
	if err != nil {
		openai.WriteError(w, http.StatusBadRequest, "invalid_request_error", err.Error())
		return
	}

	b, ok := rt.s.Backend(model)
	if !ok {
		openai.WriteError(w, http.StatusNotFound, "invalid_request_error",
			fmt.Sprintf("model %q is not configured", model))
		return
	}
	if b.State() == BackendFailed {
		openai.WriteError(w, http.StatusServiceUnavailable, "backend_failed",
			fmt.Sprintf("backend for %q failed to initialize", model))
		return
	}

	now := rt.s.clock.Now()
	b.touch(now)
	rt.s.reg.Counter("requests_total").Inc()
	rt.s.reg.Counter("requests_" + b.name).Inc()

	ctx := rt.s.traceCtx(r.Context())
	var span *obs.Span
	ctx, span = obs.Start(ctx, "request",
		obs.String("model", model), obs.String("path", path))
	defer span.End()
	if timeout := rt.s.cfg.ResponseTimeout(); timeout > 0 {
		// The response timeout is expressed in simulated seconds; convert
		// to wall time via the clock scale for the context deadline.
		wall := rt.s.toWall(timeout)
		var cancel func()
		ctx, cancel = contextWithTimeout(ctx, wall)
		defer cancel()
	}

	item := newQueuedRequest(ctx, path, body, now)
	defer close(item.done)

	// Queue-capacity check (§3.3 ②).
	select {
	case b.queue <- item:
	default:
		rt.s.reg.Counter("rejected_queue_full").Inc()
		span.Fail(fmt.Errorf("queue full"))
		openai.WriteError(w, http.StatusTooManyRequests, "queue_full",
			fmt.Sprintf("request queue for %q is full", model))
		return
	}

	select {
	case <-ctx.Done():
		span.Fail(ctx.Err())
		openai.WriteError(w, http.StatusGatewayTimeout, "timeout", "request timed out or was cancelled")
		return
	case res := <-item.result:
		if res.err != nil {
			rt.s.reg.Counter("forward_errors").Inc()
			span.Fail(res.err)
			openai.WriteError(w, http.StatusBadGateway, "backend_error", res.err.Error())
			return
		}
		defer res.resp.Body.Close()
		relayResponse(w, res.resp)
		rt.s.reg.Histogram("request_latency").Observe(rt.s.clock.Since(now))
	}
}

// relayResponse streams the backend response (headers, status, body) to
// the client, flushing as data arrives so SSE streams stay real-time.
func relayResponse(w http.ResponseWriter, resp *http.Response) {
	for k, vs := range resp.Header {
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	flusher, _ := w.(http.Flusher)
	buf := make([]byte, 4096)
	for {
		n, err := resp.Body.Read(buf)
		if n > 0 {
			if _, werr := w.Write(buf[:n]); werr != nil {
				return
			}
			if flusher != nil {
				flusher.Flush()
			}
		}
		if err != nil {
			return
		}
	}
}

// listModels reports every configured model.
func (rt *router) listModels(w http.ResponseWriter, r *http.Request) {
	list := openai.ModelList{Object: "list"}
	for _, b := range rt.s.Backends() {
		list.Data = append(list.Data, openai.ModelInfo{
			ID:      b.name,
			Object:  "model",
			Created: rt.s.clock.Now().Unix(),
			OwnedBy: string(b.engine),
		})
	}
	openai.WriteJSON(w, http.StatusOK, list)
}

// adminStatus reports backend and GPU state.
func (rt *router) adminStatus(w http.ResponseWriter, r *http.Request) {
	type gpuStatus struct {
		ID          int     `json:"id"`
		UsedGiB     float64 `json:"used_gib"`
		TotalGiB    float64 `json:"total_gib"`
		Utilization float64 `json:"utilization"`
	}
	var out struct {
		Backends []BackendStatus `json:"backends"`
		GPUs     []gpuStatus     `json:"gpus"`
	}
	for _, b := range rt.s.Backends() {
		out.Backends = append(out.Backends, b.Status())
	}
	for _, st := range rt.s.tm.Monitor().Sample() {
		out.GPUs = append(out.GPUs, gpuStatus{
			ID:          st.ID,
			UsedGiB:     float64(st.UsedBytes) / (1 << 30),
			TotalGiB:    float64(st.TotalBytes) / (1 << 30),
			Utilization: st.Utilization,
		})
	}
	openai.WriteJSON(w, http.StatusOK, out)
}

// adminSwap triggers an explicit swap-in or swap-out (§4.2: models swap
// in "with either explicit API calls or incoming inference requests").
func (rt *router) adminSwap(in bool) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			openai.WriteError(w, http.StatusMethodNotAllowed, "invalid_request_error", "use POST")
			return
		}
		name := r.URL.Query().Get("model")
		b, ok := rt.s.Backend(name)
		if !ok {
			openai.WriteError(w, http.StatusNotFound, "invalid_request_error",
				fmt.Sprintf("model %q is not configured", name))
			return
		}
		var err error
		if in {
			err = rt.s.sched.EnsureRunning(r.Context(), b)
		} else {
			err = rt.s.ctrl.SwapOut(r.Context(), b)
		}
		if err != nil {
			openai.WriteError(w, http.StatusConflict, "swap_failed", err.Error())
			return
		}
		openai.WriteJSON(w, http.StatusOK, b.Status())
	}
}

// adminInventory reports the node-local backend/snapshot inventory the
// cluster layer consumes for placement and rebalancing.
func (rt *router) adminInventory(w http.ResponseWriter, r *http.Request) {
	openai.WriteJSON(w, http.StatusOK, rt.s.Inventory())
}

// metricsProm serves the registry in the Prometheus text exposition
// format (scrapeable /metrics).
func (rt *router) metricsProm(w http.ResponseWriter, r *http.Request) {
	rt.s.reg.Handler().ServeHTTP(w, r)
}

// metricsCSV dumps the metrics registry as CSV (the paper's analysis
// format).
func (rt *router) metricsCSV(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/csv")
	rt.s.reg.WriteCSV(w)
}
