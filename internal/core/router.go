package core

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"

	"swapservellm/internal/obs"
	"swapservellm/internal/openai"
	"swapservellm/internal/proxy"
	"swapservellm/internal/proxy/ir"
)

// router is the OpenAI API router of §3.1 ①, grown into the same
// multi-protocol front door the cluster gateway runs: every inference
// route is one row of the shared proxy endpoint table, decoded through
// the IR into the canonical OpenAI encoding the engines speak, queued
// for the model workers, and translated back into the client's wire
// format (including NDJSON stream framing for Ollama clients) on the
// way out. A standalone swapserved node therefore speaks both
// protocols identically to a full cluster deployment.
type router struct {
	s     *Server
	front *proxy.Front
}

// newRouter wires the front door: the node keeps no response cache
// (caching is the gateway's job — a node must stay deterministic for
// cross-node stream resume) and no chaos sites (proxy.translate and
// proxy.cache are gateway-level).
func newRouter(s *Server) *router {
	return &router{s: s, front: proxy.New(proxy.WithClock(s.clock))}
}

// handler builds the router's http.Handler: one loop over the endpoint
// table plus the node admin and observability routes.
func (rt *router) handler() http.Handler {
	mux := http.NewServeMux()
	for _, ep := range rt.front.Table() {
		ep := ep
		switch {
		case ep.Upstream != "":
			mux.HandleFunc(ep.Path, rt.auth(func(w http.ResponseWriter, r *http.Request) {
				rt.serveEndpoint(w, r, ep)
			}))
		case ep.Path == "/v1/models":
			mux.HandleFunc(ep.Path, rt.auth(rt.listModels))
		case ep.Path == "/api/tags":
			mux.HandleFunc(ep.Path, rt.auth(rt.listTags))
		}
	}
	mux.HandleFunc("/health", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/admin/status", rt.auth(rt.adminStatus))
	mux.HandleFunc("/admin/inventory", rt.auth(rt.adminInventory))
	mux.HandleFunc("/admin/swap-in", rt.auth(rt.adminSwap(true)))
	mux.HandleFunc("/admin/swap-out", rt.auth(rt.adminSwap(false)))
	mux.HandleFunc("/metrics", rt.auth(rt.metricsProm))
	mux.HandleFunc("/metrics.csv", rt.auth(rt.metricsCSV))
	mux.Handle("/debug/trace", rt.s.tracer.Handler())
	return mux
}

// auth enforces the optional bearer token.
func (rt *router) auth(next http.HandlerFunc) http.HandlerFunc {
	token := rt.s.cfg.Global.AuthToken
	if token == "" {
		return next
	}
	return func(w http.ResponseWriter, r *http.Request) {
		got := strings.TrimPrefix(r.Header.Get("Authorization"), "Bearer ")
		if got != token {
			openai.WriteError(w, http.StatusUnauthorized, "invalid_api_key", "invalid or missing API key")
			return
		}
		next(w, r)
	}
}

// maxBodyBytes bounds request payloads (1 MiB covers any chat request).
const maxBodyBytes = 1 << 20

// serveEndpoint runs one endpoint-table row: decode the client wire
// format into the IR, queue the canonical request for the model's
// worker, and translate the backend's response back out.
func (rt *router) serveEndpoint(w http.ResponseWriter, r *http.Request, ep proxy.Endpoint) {
	if r.Method != ep.Method {
		openai.WriteError(w, http.StatusMethodNotAllowed, "invalid_request_error", "use "+ep.Method)
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, maxBodyBytes))
	if err != nil {
		openai.WriteError(w, http.StatusBadRequest, "invalid_request_error", "reading body: "+err.Error())
		return
	}
	req, err := rt.front.Decode(ep, body)
	if err != nil {
		if errors.Is(err, proxy.ErrTranslate) {
			openai.WriteError(w, http.StatusServiceUnavailable, "translate_failed", err.Error())
			return
		}
		openai.WriteError(w, http.StatusBadRequest, "invalid_request_error", err.Error())
		return
	}
	canonical, err := rt.front.EncodeUpstream(req)
	if err != nil {
		openai.WriteError(w, http.StatusServiceUnavailable, "translate_failed", err.Error())
		return
	}

	b, ok := rt.s.Backend(req.Model)
	if !ok {
		openai.WriteError(w, http.StatusNotFound, "invalid_request_error",
			fmt.Sprintf("model %q is not configured", req.Model))
		return
	}
	if b.State() == BackendFailed {
		openai.WriteError(w, http.StatusServiceUnavailable, "backend_failed",
			fmt.Sprintf("backend for %q failed to initialize", req.Model))
		return
	}

	now := rt.s.clock.Now()
	b.touch(now)
	rt.s.reg.Counter("requests_total").Inc()
	rt.s.reg.Counter("requests_" + b.name).Inc()

	ctx := rt.s.traceCtx(r.Context())
	var span *obs.Span
	ctx, span = obs.Start(ctx, "request",
		obs.String("model", req.Model), obs.String("path", ep.Path),
		obs.String("protocol", string(ep.Protocol)))
	defer span.End()
	if timeout := rt.s.cfg.ResponseTimeout(); timeout > 0 {
		// The response timeout is expressed in simulated seconds; convert
		// to wall time via the clock scale for the context deadline.
		wall := rt.s.toWall(timeout)
		var cancel func()
		ctx, cancel = contextWithTimeout(ctx, wall)
		defer cancel()
	}

	item := newQueuedRequest(ctx, ep.Upstream, canonical, now)
	defer close(item.done)

	// Queue-capacity check (§3.3 ②).
	select {
	case b.queue <- item:
	default:
		rt.s.reg.Counter("rejected_queue_full").Inc()
		span.Fail(fmt.Errorf("queue full"))
		openai.WriteError(w, http.StatusTooManyRequests, "queue_full",
			fmt.Sprintf("request queue for %q is full", req.Model))
		return
	}

	select {
	case <-ctx.Done():
		span.Fail(ctx.Err())
		openai.WriteError(w, http.StatusGatewayTimeout, "timeout", "request timed out or was cancelled")
		return
	case res := <-item.result:
		if res.err != nil {
			rt.s.reg.Counter("forward_errors").Inc()
			span.Fail(res.err)
			openai.WriteError(w, http.StatusBadGateway, "backend_error", res.err.Error())
			return
		}
		defer res.resp.Body.Close()
		rt.relayResponse(w, res.resp, ep)
		rt.s.reg.Histogram("request_latency").Observe(rt.s.clock.Since(now))
	}
}

// relayResponse delivers the backend response to the client in the
// endpoint's wire format. OpenAI endpoints pass bytes through
// untouched; Ollama endpoints translate the canonical JSON body or
// re-frame the canonical SSE stream as NDJSON, flushing per frame so
// streams stay real-time.
func (rt *router) relayResponse(w http.ResponseWriter, resp *http.Response, ep proxy.Endpoint) {
	tr := rt.front.Translator(ep)
	streaming := strings.HasPrefix(resp.Header.Get("Content-Type"), "text/event-stream")
	if tr.Passthrough() {
		relayRaw(w, resp)
		return
	}
	if streaming {
		rt.relayTranslatedStream(w, resp, tr)
		return
	}
	full, err := io.ReadAll(resp.Body)
	if err != nil {
		openai.WriteError(w, http.StatusBadGateway, "backend_error", "reading backend response: "+err.Error())
		return
	}
	if resp.StatusCode != http.StatusOK {
		// Error envelopes pass through untranslated: every protocol's
		// tooling understands a JSON error object.
		copyResponseHeaders(w, resp)
		w.WriteHeader(resp.StatusCode)
		w.Write(full)
		return
	}
	out, err := rt.front.TranslateResponse(ep, full)
	if err != nil {
		openai.WriteError(w, http.StatusServiceUnavailable, "translate_failed", err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(out)
}

// relayTranslatedStream re-frames the backend's canonical SSE stream
// into the endpoint's client framing, one event at a time.
func (rt *router) relayTranslatedStream(w http.ResponseWriter, resp *http.Response, tr *proxy.StreamTranslator) {
	w.Header().Set("Content-Type", tr.ContentType())
	w.WriteHeader(resp.StatusCode)
	flusher, _ := w.(http.Flusher)
	br := bufio.NewReader(resp.Body)
	for {
		event, err := ir.ReadSSEEvent(br)
		if err != nil {
			return // truncated upstream: the missing done line tells the client
		}
		frames, done, terr := tr.Frames(event)
		if terr != nil {
			return
		}
		if len(frames) > 0 {
			if _, werr := w.Write(frames); werr != nil {
				return
			}
			if flusher != nil {
				flusher.Flush()
			}
		}
		if done {
			return
		}
	}
}

// relayRaw streams the backend response (headers, status, body) to the
// client unchanged, flushing as data arrives so SSE streams stay
// real-time.
func relayRaw(w http.ResponseWriter, resp *http.Response) {
	copyResponseHeaders(w, resp)
	w.WriteHeader(resp.StatusCode)
	flusher, _ := w.(http.Flusher)
	buf := make([]byte, 4096)
	for {
		n, err := resp.Body.Read(buf)
		if n > 0 {
			if _, werr := w.Write(buf[:n]); werr != nil {
				return
			}
			if flusher != nil {
				flusher.Flush()
			}
		}
		if err != nil {
			return
		}
	}
}

func copyResponseHeaders(w http.ResponseWriter, resp *http.Response) {
	for k, vs := range resp.Header {
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
}

// listModels reports every configured model with its protocol
// capabilities.
func (rt *router) listModels(w http.ResponseWriter, r *http.Request) {
	list := openai.ModelList{Object: "list"}
	for _, b := range rt.s.Backends() {
		list.Data = append(list.Data, openai.ModelInfo{
			ID:           b.name,
			Object:       "model",
			Created:      rt.s.clock.Now().Unix(),
			OwnedBy:      string(b.engine),
			Capabilities: b.model.Capabilities(),
		})
	}
	openai.WriteJSON(w, http.StatusOK, list)
}

// listTags is the Ollama protocol's model listing (GET /api/tags).
func (rt *router) listTags(w http.ResponseWriter, r *http.Request) {
	var tags ir.OllamaTagsResponse
	for _, b := range rt.s.Backends() {
		tags.Models = append(tags.Models, proxy.TagFor(b.name, b.model))
	}
	openai.WriteJSON(w, http.StatusOK, tags)
}

// adminStatus reports backend and GPU state.
func (rt *router) adminStatus(w http.ResponseWriter, r *http.Request) {
	type gpuStatus struct {
		ID          int     `json:"id"`
		UsedGiB     float64 `json:"used_gib"`
		TotalGiB    float64 `json:"total_gib"`
		Utilization float64 `json:"utilization"`
	}
	var out struct {
		Backends []BackendStatus `json:"backends"`
		GPUs     []gpuStatus     `json:"gpus"`
	}
	for _, b := range rt.s.Backends() {
		out.Backends = append(out.Backends, b.Status())
	}
	for _, st := range rt.s.tm.Monitor().Sample() {
		out.GPUs = append(out.GPUs, gpuStatus{
			ID:          st.ID,
			UsedGiB:     float64(st.UsedBytes) / (1 << 30),
			TotalGiB:    float64(st.TotalBytes) / (1 << 30),
			Utilization: st.Utilization,
		})
	}
	openai.WriteJSON(w, http.StatusOK, out)
}

// adminSwap triggers an explicit swap-in or swap-out (§4.2: models swap
// in "with either explicit API calls or incoming inference requests").
func (rt *router) adminSwap(in bool) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			openai.WriteError(w, http.StatusMethodNotAllowed, "invalid_request_error", "use POST")
			return
		}
		name := r.URL.Query().Get("model")
		b, ok := rt.s.Backend(name)
		if !ok {
			openai.WriteError(w, http.StatusNotFound, "invalid_request_error",
				fmt.Sprintf("model %q is not configured", name))
			return
		}
		var err error
		if in {
			err = rt.s.sched.EnsureRunning(r.Context(), b)
		} else {
			err = rt.s.ctrl.SwapOut(r.Context(), b)
		}
		if err != nil {
			openai.WriteError(w, http.StatusConflict, "swap_failed", err.Error())
			return
		}
		openai.WriteJSON(w, http.StatusOK, b.Status())
	}
}

// adminInventory reports the node-local backend/snapshot inventory the
// cluster layer consumes for placement and rebalancing.
func (rt *router) adminInventory(w http.ResponseWriter, r *http.Request) {
	openai.WriteJSON(w, http.StatusOK, rt.s.Inventory())
}

// metricsProm serves the registry in the Prometheus text exposition
// format (scrapeable /metrics).
func (rt *router) metricsProm(w http.ResponseWriter, r *http.Request) {
	rt.s.reg.Handler().ServeHTTP(w, r)
}

// metricsCSV dumps the metrics registry as CSV (the paper's analysis
// format).
func (rt *router) metricsCSV(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/csv")
	rt.s.reg.WriteCSV(w)
}
