package core

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"swapservellm/internal/chaos"
	"swapservellm/internal/config"
	"swapservellm/internal/cudackpt"
	"swapservellm/internal/gpu"
	"swapservellm/internal/perfmodel"
	"swapservellm/internal/simclock"
)

// exchangeServer builds a one-GPU deployment with a swapped-out target
// (initialized first, snapshotted, paused) and a keep-warm victim
// holding the device.
func exchangeServer(t *testing.T, pipelined bool, opts Options) (*Server, *Backend, *Backend) {
	t.Helper()
	cfg := config.Default()
	cfg.Global.PipelinedSwap = pipelined
	target := vllmModel("llama3.2:1b-fp16")
	victim := vllmModel("llama3.2:3b-fp16")
	victim.KeepWarm = true
	cfg.Models = []config.Model{target, victim}
	if opts.Clock == nil {
		opts.Clock = simclock.NewScaled(testEpoch, 20000)
	}
	s, err := New(cfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	if err := s.Start(ctx); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Shutdown)
	tb, _ := s.Backend("llama3.2:1b-fp16")
	vb, _ := s.Backend("llama3.2:3b-fp16")
	return s, vb, tb
}

func checkExchanged(t *testing.T, s *Server, victim, target *Backend) {
	t.Helper()
	if st := victim.State(); st != BackendSwappedOut {
		t.Fatalf("victim state = %v, want swapped-out", st)
	}
	if st := target.State(); st != BackendRunning {
		t.Fatalf("target state = %v, want running", st)
	}
	if got := s.Driver().HostPledged(); got != 0 {
		t.Fatalf("host pledged after exchange = %d", got)
	}
	if got := s.TaskManager().Reserved(0); got != 0 {
		t.Fatalf("reserved headroom leaked: %d", got)
	}
	// The target must be genuinely servable.
	doChat(t, s.URL(), target.Name(), 2)
}

func TestSwapExchangeSequential(t *testing.T) {
	s, victim, target := exchangeServer(t, false, Options{})
	if err := s.Controller().SwapExchange(context.Background(), victim, target); err != nil {
		t.Fatal(err)
	}
	checkExchanged(t, s, victim, target)
}

func TestSwapExchangePipelined(t *testing.T) {
	s, victim, target := exchangeServer(t, true, Options{})
	if !s.Controller().Pipelined() {
		t.Fatal("pipelined flag not wired from config")
	}
	if err := s.Controller().SwapExchange(context.Background(), victim, target); err != nil {
		t.Fatal(err)
	}
	checkExchanged(t, s, victim, target)
	if n := s.Registry().Histogram("swap_exchange_latency").Count(); n != 1 {
		t.Fatalf("swap_exchange_latency count = %d", n)
	}
}

func TestSwapExchangePipelinedOverlaps(t *testing.T) {
	// Both directions of the exchange must be in flight at once: the
	// victim's first D2H chunk blocks until the target's first H2D chunk
	// has been observed, which can only happen if the restore really
	// starts before the checkpoint finishes.
	s, victim, target := exchangeServer(t, true, Options{})
	victimPID := victim.Container().ID()
	targetPID := target.Container().ID()

	d2h := make(chan struct{})
	h2d := make(chan struct{})
	var d2hOnce, h2dOnce sync.Once
	s.Driver().OnChunk(func(ev cudackpt.ChunkEvent) {
		switch {
		case ev.PID == victimPID && ev.Dir == perfmodel.DirD2H:
			d2hOnce.Do(func() { close(d2h) })
			select {
			case <-h2d:
			case <-time.After(30 * time.Second):
				t.Error("target restore never started while victim checkpoint was in flight")
			}
		case ev.PID == targetPID && ev.Dir == perfmodel.DirH2D:
			h2dOnce.Do(func() { close(h2d) })
			select {
			case <-d2h:
			case <-time.After(30 * time.Second):
				t.Error("victim checkpoint never started while target restore was in flight")
			}
		}
	})
	if err := s.Controller().SwapExchange(context.Background(), victim, target); err != nil {
		t.Fatal(err)
	}
	checkExchanged(t, s, victim, target)
}

func TestSwapExchangePipelinedVictimFaultRollsBack(t *testing.T) {
	// The victim's checkpoint fails outright (operation fault, not a
	// chunk fault): the exchange must thaw the victim back to a serving
	// state, cancel the target's restore, and leave the target
	// swapped-out with all accounting balanced.
	inj := chaos.NewInjector(chaos.Plan{Seed: 1, Rules: []chaos.Rule{
		// After: 1 skips the target's init-time snapshot checkpoint.
		{Site: chaos.SiteCkptCheckpoint, P: 1, After: 1, Times: 1},
	}})
	s, victim, target := exchangeServer(t, true, Options{Chaos: inj})

	err := s.Controller().SwapExchange(context.Background(), victim, target)
	if err == nil {
		t.Fatal("exchange succeeded despite injected checkpoint fault")
	}
	if !errors.Is(err, chaos.ErrInjected) {
		t.Fatalf("err = %v, want injected fault", err)
	}
	if st := victim.State(); st != BackendRunning {
		t.Fatalf("victim state = %v, want running after rollback", st)
	}
	if st := target.State(); st != BackendSwappedOut {
		t.Fatalf("target state = %v, want swapped-out after rollback", st)
	}
	if got := s.Driver().HostPledged(); got != 0 {
		t.Fatalf("host pledged after failed exchange = %d", got)
	}
	if got := s.TaskManager().Reserved(0); got != 0 {
		t.Fatalf("reserved headroom leaked: %d", got)
	}
	// Both backends must still be usable: the victim serves immediately,
	// and the exchange succeeds once chaos is disarmed.
	s.Driver().SetChaos(nil)
	doChat(t, s.URL(), victim.Name(), 2)
	if err := s.Controller().SwapExchange(context.Background(), victim, target); err != nil {
		t.Fatal(err)
	}
	checkExchanged(t, s, victim, target)
}

func TestEvictionsOverlapAcrossDevices(t *testing.T) {
	// Per-GPU eviction serialization: evicting on device 0 and device 1
	// concurrently must overlap. Each eviction's first checkpoint chunk
	// blocks until the other eviction's first chunk is seen — possible
	// only if neither holds a lock the other needs.
	cfg := config.Default()
	cfg.Global.SwapChunkMiB = 256
	a := ollamaModel("deepseek-r1:14b-fp16")
	a.KeepWarm = true
	b := ollamaModel("deepseek-r1:7b-q4")
	b.KeepWarm = true
	b.GPUs = []int{1}
	cfg.Models = []config.Model{a, b}
	s := startServer(t, cfg, Options{Clock: simclock.NewScaled(testEpoch, 2000)})

	ba, _ := s.Backend(a.Name)
	bb, _ := s.Backend(b.Name)
	pidA := ba.Container().ID()
	pidB := bb.Container().ID()

	firstA := make(chan struct{})
	firstB := make(chan struct{})
	var onceA, onceB sync.Once
	s.Driver().OnChunk(func(ev cudackpt.ChunkEvent) {
		switch ev.PID {
		case pidA:
			onceA.Do(func() { close(firstA) })
			select {
			case <-firstB:
			case <-time.After(30 * time.Second):
				t.Error("eviction on gpu1 never progressed during eviction on gpu0")
			}
		case pidB:
			onceB.Do(func() { close(firstB) })
			select {
			case <-firstA:
			case <-time.After(30 * time.Second):
				t.Error("eviction on gpu0 never progressed during eviction on gpu1")
			}
		}
	})

	var wg sync.WaitGroup
	results := make([]bool, 2)
	wg.Add(2)
	go func() {
		defer wg.Done()
		_, results[0] = s.Controller().EvictOne(context.Background(), 0, nil)
	}()
	go func() {
		defer wg.Done()
		_, results[1] = s.Controller().EvictOne(context.Background(), 1, nil)
	}()
	wg.Wait()
	if !results[0] || !results[1] {
		t.Fatalf("evictions failed: gpu0=%v gpu1=%v", results[0], results[1])
	}
}

func TestSameDeviceEvictionsSerialize(t *testing.T) {
	// Two concurrent reclaim loops on the same device must not stampede:
	// the per-device lock serializes them, so the two victims' chunk
	// streams never interleave.
	cfg := config.Default()
	cfg.Global.SwapChunkMiB = 256
	a := ollamaModel("deepseek-r1:14b-fp16")
	a.KeepWarm = true
	b := ollamaModel("deepseek-r1:7b-q4")
	b.KeepWarm = true
	cfg.Models = []config.Model{a, b}
	s := startServer(t, cfg, Options{Clock: simclock.NewScaled(testEpoch, 2000)})

	ba, _ := s.Backend(a.Name)
	bb, _ := s.Backend(b.Name)
	pids := map[string]string{ba.Container().ID(): "a", bb.Container().ID(): "b"}

	var mu sync.Mutex
	var order []string
	s.Driver().OnChunk(func(ev cudackpt.ChunkEvent) {
		if name, ok := pids[ev.PID]; ok {
			mu.Lock()
			order = append(order, name)
			mu.Unlock()
		}
	})

	var wg sync.WaitGroup
	results := make([]bool, 2)
	wg.Add(2)
	go func() {
		defer wg.Done()
		_, results[0] = s.Controller().EvictOne(context.Background(), 0, map[string]bool{b.Name: true})
	}()
	go func() {
		defer wg.Done()
		_, results[1] = s.Controller().EvictOne(context.Background(), 0, map[string]bool{a.Name: true})
	}()
	wg.Wait()
	if !results[0] || !results[1] {
		t.Fatalf("evictions failed: %v %v", results[0], results[1])
	}
	mu.Lock()
	defer mu.Unlock()
	switches := 0
	for i := 1; i < len(order); i++ {
		if order[i] != order[i-1] {
			switches++
		}
	}
	if switches > 1 {
		t.Fatalf("same-device evictions interleaved (%d switches): %v", switches, order)
	}
}

func TestIncrementalGrantBeforeCheckpointFinishes(t *testing.T) {
	// A pending reservation smaller than the victim's footprint must be
	// granted from the first freed chunks, long before the checkpoint
	// finishes.
	clock := simclock.NewScaled(testEpoch, 1000)
	topo := gpu.NewTopology(perfmodel.GPUH100, 1, 80*gib)
	tm := NewTaskManager(clock, topo)
	tb, _ := perfmodel.TestbedByName("h100")
	drv := cudackpt.NewDriver(clock, tb, 0)
	dev, _ := topo.Device(0)
	if err := drv.Register("victim", dev, perfmodel.EngineVLLM, 16*gib); err != nil {
		t.Fatal(err)
	}
	if err := dev.Alloc("victim", 75*gib); err != nil {
		t.Fatal(err)
	}
	drv.OnChunk(func(ev cudackpt.ChunkEvent) {
		if ev.Dir == perfmodel.DirD2H {
			tm.NotifyFreed()
		}
	})

	suspended := make(chan error, 1)
	go func() {
		_, err := drv.Suspend(context.Background(), "victim")
		suspended <- err
	}()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	res, err := tm.Reserve(ctx, []int{0}, 10*gib, "incoming")
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-suspended:
		t.Fatal("reservation granted only after the whole checkpoint finished")
	default:
	}
	res.Release()
	if err := <-suspended; err != nil {
		t.Fatal(err)
	}
	if got := tm.Reserved(0); got != 0 {
		t.Fatalf("Reserved = %d after release", got)
	}
}

func TestCancelledReservationReturnsPartialClaims(t *testing.T) {
	tm, topo := newTM(t, 1)
	dev, _ := topo.Device(0)
	if err := dev.Alloc("squatter", 80*gib); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() {
		_, err := tm.Reserve(ctx, []int{0}, 40*gib, "w")
		errCh <- err
	}()
	time.Sleep(20 * time.Millisecond) // let the waiter enqueue

	// Free 10 GiB: the head claims it incrementally but stays queued.
	if err := dev.Resize("squatter", 70*gib); err != nil {
		t.Fatal(err)
	}
	tm.NotifyFreed()
	if got := tm.Reserved(0); got != 10*gib {
		t.Fatalf("partial claim = %d, want %d", got, 10*gib)
	}

	cancel()
	if err := <-errCh; !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	if got := tm.Reserved(0); got != 0 {
		t.Fatalf("cancelled reservation leaked %d claimed bytes", got)
	}
	if tm.PendingCount() != 0 {
		t.Fatalf("pending queue not cleaned: %d", tm.PendingCount())
	}
}

func TestReserveAsyncBarrier(t *testing.T) {
	tm, topo := newTM(t, 1)
	dev, _ := topo.Device(0)
	if err := dev.Alloc("squatter", 80*gib); err != nil {
		t.Fatal(err)
	}

	ar, err := tm.ReserveAsync(context.Background(), []int{0}, 40*gib, "t")
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-ar.Done():
		t.Fatal("granted with zero free memory")
	default:
	}

	// A later request must queue behind the barrier, not steal freed
	// memory.
	if err := dev.Resize("squatter", 50*gib); err != nil {
		t.Fatal(err)
	}
	tm.NotifyFreed()
	if got := tm.Reserved(0); got != 30*gib {
		t.Fatalf("partial claim = %d, want %d", got, 30*gib)
	}
	if got := tm.Available(0); got != 0 {
		t.Fatalf("Available = %d with barrier holding all freed memory", got)
	}

	if err := dev.Resize("squatter", 40*gib); err != nil {
		t.Fatal(err)
	}
	tm.NotifyFreed()
	select {
	case <-ar.Done():
	default:
		t.Fatal("barrier not granted after enough memory freed")
	}
	if got := tm.Reserved(0); got != 40*gib {
		t.Fatalf("Reserved = %d after full grant", got)
	}
	ar.Release()
	ar.Release() // idempotent
	if got := tm.Reserved(0); got != 0 {
		t.Fatalf("Reserved = %d after release", got)
	}
}

func TestReserveAsyncReleaseReturnsPartialClaims(t *testing.T) {
	tm, topo := newTM(t, 1)
	dev, _ := topo.Device(0)
	if err := dev.Alloc("squatter", 80*gib); err != nil {
		t.Fatal(err)
	}
	ar, err := tm.ReserveAsync(context.Background(), []int{0}, 40*gib, "t")
	if err != nil {
		t.Fatal(err)
	}
	if err := dev.Resize("squatter", 65*gib); err != nil {
		t.Fatal(err)
	}
	tm.NotifyFreed()
	if got := tm.Reserved(0); got != 15*gib {
		t.Fatalf("partial claim = %d", got)
	}
	ar.Release()
	if got := tm.Reserved(0); got != 0 {
		t.Fatalf("released partial claim leaked %d bytes", got)
	}
	if tm.PendingCount() != 0 {
		t.Fatalf("pending queue not cleaned: %d", tm.PendingCount())
	}
}
