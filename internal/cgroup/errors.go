package cgroup

import "errors"

// The freezer's error vocabulary. Every error this package returns
// wraps one of these sentinels (or, for an injected freezer-write
// failure, chaos.ErrInjected), so callers branch with errors.Is:
//
//   - ErrNotFound: the path does not name an existing cgroup.
//   - ErrExists: Create on a path that already exists.
//   - ErrHasChildren: Remove on a cgroup with descendants.
//   - ErrParentMissing: Create under a nonexistent parent.
var (
	ErrNotFound      = errors.New("cgroup: no such cgroup")
	ErrExists        = errors.New("cgroup: cgroup already exists")
	ErrHasChildren   = errors.New("cgroup: cgroup has children")
	ErrParentMissing = errors.New("cgroup: parent cgroup does not exist")
)
