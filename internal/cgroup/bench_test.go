package cgroup

import (
	"context"
	"fmt"
	"testing"
)

func BenchmarkFreezeThaw(b *testing.B) {
	f := NewFreezer()
	f.Create("/bench")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		f.Freeze(context.Background(), "/bench")
		f.Thaw(context.Background(), "/bench")
	}
}

func BenchmarkEffectivelyFrozenDeep(b *testing.B) {
	f := NewFreezer()
	path := ""
	for i := 0; i < 8; i++ {
		path = fmt.Sprintf("%s/g%d", path, i)
		f.Create(path)
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		f.EffectivelyFrozen(path)
	}
}

func BenchmarkCreateRemove(b *testing.B) {
	f := NewFreezer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		f.Create("/churn")
		f.Remove("/churn")
	}
}
