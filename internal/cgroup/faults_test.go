package cgroup

import (
	"context"
	"errors"
	"testing"

	"swapservellm/internal/chaos"
)

func TestFreezeThawFaults(t *testing.T) {
	f := NewFreezer()
	if err := f.Create("/pod"); err != nil {
		t.Fatal(err)
	}

	// A freeze fault leaves the cgroup thawed.
	f.SetChaos(chaos.FailNext(chaos.SiteCgroupFreeze, 1))
	if err := f.Freeze(context.Background(), "/pod"); !errors.Is(err, chaos.ErrInjected) {
		t.Fatalf("Freeze = %v, want injected", err)
	}
	if s, _ := f.SelfState("/pod"); s != Thawed {
		t.Fatalf("state after freeze fault = %v", s)
	}
	if err := f.Freeze(context.Background(), "/pod"); err != nil {
		t.Fatalf("Freeze after fault cleared: %v", err)
	}

	// A thaw fault leaves it frozen.
	f.SetChaos(chaos.FailNext(chaos.SiteCgroupThaw, 1))
	if err := f.Thaw(context.Background(), "/pod"); !errors.Is(err, chaos.ErrInjected) {
		t.Fatalf("Thaw = %v, want injected", err)
	}
	if s, _ := f.SelfState("/pod"); s != Frozen {
		t.Fatalf("state after thaw fault = %v", s)
	}
	if err := f.Thaw(context.Background(), "/pod"); err != nil {
		t.Fatalf("Thaw after fault cleared: %v", err)
	}
	if s, _ := f.SelfState("/pod"); s != Thawed {
		t.Fatalf("final state = %v", s)
	}
}
