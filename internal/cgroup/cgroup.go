// Package cgroup simulates the Linux cgroup freezer subsystem that
// SwapServeLLM uses (via the container runtime's pause/unpause) to suspend
// CPU execution of inference engines during swap-out. It models the v1
// freezer semantics referenced by the paper: per-cgroup FROZEN/THAWED
// self-state, with the effective state inherited from frozen ancestors.
package cgroup

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"

	"swapservellm/internal/chaos"
	"swapservellm/internal/obs"
)

// SelfState is a cgroup's own freezer state (what is written to
// freezer.state).
type SelfState int

// Self states.
const (
	Thawed SelfState = iota
	Frozen
)

// String returns the kernel-style uppercase state name.
func (s SelfState) String() string {
	if s == Frozen {
		return "FROZEN"
	}
	return "THAWED"
}

// Freezer is a simulated freezer hierarchy rooted at "/". It is safe for
// concurrent use.
type Freezer struct {
	mu sync.RWMutex
	// groups mutates only through the lifecycle entry points that
	// validate the hierarchy (parent exists, no orphaned children).
	groups   map[string]SelfState //swaplint:state allow=NewFreezer,Create,Remove,setState
	chaosInj *chaos.Injector
}

// SetChaos installs (or, with nil, removes) the fault injector. Freeze
// and Thaw consult chaos.SiteCgroupFreeze / chaos.SiteCgroupThaw before
// writing the state — a fired fault models the kernel freezer write
// failing (e.g. FREEZING stuck on an uninterruptible task) and leaves
// the cgroup in its previous state.
func (f *Freezer) SetChaos(in *chaos.Injector) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.chaosInj = in
}

// NewFreezer returns a hierarchy containing only the root cgroup "/".
func NewFreezer() *Freezer {
	return &Freezer{groups: map[string]SelfState{"/": Thawed}}
}

// normalize canonicalizes a cgroup path: must start with "/", no trailing
// slash (except root).
func normalize(path string) (string, error) {
	if path == "" || path[0] != '/' {
		return "", fmt.Errorf("cgroup: path %q must be absolute", path)
	}
	if path != "/" {
		path = strings.TrimRight(path, "/")
	}
	if strings.Contains(path, "//") {
		return "", fmt.Errorf("cgroup: path %q contains empty segment", path)
	}
	return path, nil
}

// parentOf returns the parent path of a non-root normalized path.
func parentOf(path string) string {
	i := strings.LastIndex(path, "/")
	if i <= 0 {
		return "/"
	}
	return path[:i]
}

// Create adds a cgroup at path. The parent must already exist.
func (f *Freezer) Create(path string) error {
	p, err := normalize(path)
	if err != nil {
		return err
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, dup := f.groups[p]; dup {
		return fmt.Errorf("%w: %s", ErrExists, p)
	}
	if _, ok := f.groups[parentOf(p)]; !ok {
		return fmt.Errorf("%w: %s", ErrParentMissing, parentOf(p))
	}
	f.groups[p] = Thawed
	return nil
}

// Remove deletes a cgroup; it must exist and have no children. The root
// cannot be removed.
func (f *Freezer) Remove(path string) error {
	p, err := normalize(path)
	if err != nil {
		return err
	}
	if p == "/" {
		return fmt.Errorf("cgroup: cannot remove root")
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, ok := f.groups[p]; !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, p)
	}
	prefix := p + "/"
	for g := range f.groups {
		if strings.HasPrefix(g, prefix) {
			return fmt.Errorf("%w: %s", ErrHasChildren, p)
		}
	}
	delete(f.groups, p)
	return nil
}

// Freeze sets path's self-state to FROZEN. All tasks in the cgroup and its
// descendants stop being scheduled. ctx carries the active trace span.
func (f *Freezer) Freeze(ctx context.Context, path string) error {
	return f.setState(ctx, path, Frozen)
}

// Thaw sets path's self-state to THAWED. Descendants remain effectively
// frozen if any ancestor is still frozen. ctx carries the active trace
// span.
func (f *Freezer) Thaw(ctx context.Context, path string) error {
	return f.setState(ctx, path, Thawed)
}

func (f *Freezer) setState(ctx context.Context, path string, s SelfState) (err error) {
	name := "cgroup.freeze"
	if s == Thawed {
		name = "cgroup.thaw"
	}
	ctx, span := obs.Start(ctx, name, obs.String("path", path))
	defer func() { span.EndErr(err) }()
	p, err := normalize(path)
	if err != nil {
		return err
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, ok := f.groups[p]; !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, p)
	}
	site := chaos.SiteCgroupFreeze
	if s == Thawed {
		site = chaos.SiteCgroupThaw
	}
	if ferr := f.chaosInj.At(site).Err; ferr != nil {
		obs.AnnotateFault(ctx, string(site), ferr)
		return fmt.Errorf("cgroup: writing %v to %s: %w", s, p, ferr)
	}
	f.groups[p] = s
	return nil
}

// SelfState returns path's own freezer state.
func (f *Freezer) SelfState(path string) (SelfState, error) {
	p, err := normalize(path)
	if err != nil {
		return Thawed, err
	}
	f.mu.RLock()
	defer f.mu.RUnlock()
	s, ok := f.groups[p]
	if !ok {
		return Thawed, fmt.Errorf("%w: %s", ErrNotFound, p)
	}
	return s, nil
}

// EffectivelyFrozen reports whether path or any of its ancestors is
// frozen — the condition under which the kernel stops scheduling the
// cgroup's tasks.
func (f *Freezer) EffectivelyFrozen(path string) (bool, error) {
	p, err := normalize(path)
	if err != nil {
		return false, err
	}
	f.mu.RLock()
	defer f.mu.RUnlock()
	if _, ok := f.groups[p]; !ok {
		return false, fmt.Errorf("%w: %s", ErrNotFound, p)
	}
	for {
		if f.groups[p] == Frozen {
			return true, nil
		}
		if p == "/" {
			return false, nil
		}
		p = parentOf(p)
	}
}

// List returns all cgroup paths in sorted order.
func (f *Freezer) List() []string {
	f.mu.RLock()
	defer f.mu.RUnlock()
	out := make([]string, 0, len(f.groups))
	for g := range f.groups {
		out = append(out, g)
	}
	sort.Strings(out)
	return out
}
