package cgroup

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"testing/quick"
)

func TestCreateAndList(t *testing.T) {
	f := NewFreezer()
	if err := f.Create("/machine.slice"); err != nil {
		t.Fatal(err)
	}
	if err := f.Create("/machine.slice/libpod-abc"); err != nil {
		t.Fatal(err)
	}
	got := f.List()
	want := []string{"/", "/machine.slice", "/machine.slice/libpod-abc"}
	if len(got) != len(want) {
		t.Fatalf("List = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("List[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestCreateErrors(t *testing.T) {
	f := NewFreezer()
	if err := f.Create("relative"); err == nil {
		t.Error("relative path accepted")
	}
	if err := f.Create("/a//b"); err == nil {
		t.Error("empty segment accepted")
	}
	if err := f.Create("/orphan/child"); !errors.Is(err, ErrParentMissing) {
		t.Errorf("missing parent: %v", err)
	}
	f.Create("/dup")
	if err := f.Create("/dup"); !errors.Is(err, ErrExists) {
		t.Errorf("duplicate: %v", err)
	}
	if err := f.Create("/trail/"); !errors.Is(err, ErrExists) {
		// "/trail/" normalizes to "/trail": first create is fine.
		t.Logf("trailing slash create: %v", err)
	}
}

func TestFreezeThaw(t *testing.T) {
	f := NewFreezer()
	f.Create("/c1")
	if err := f.Freeze(context.Background(), "/c1"); err != nil {
		t.Fatal(err)
	}
	if s, _ := f.SelfState("/c1"); s != Frozen {
		t.Fatalf("self state = %v", s)
	}
	if frozen, _ := f.EffectivelyFrozen("/c1"); !frozen {
		t.Fatal("frozen cgroup not effectively frozen")
	}
	if err := f.Thaw(context.Background(), "/c1"); err != nil {
		t.Fatal(err)
	}
	if frozen, _ := f.EffectivelyFrozen("/c1"); frozen {
		t.Fatal("thawed cgroup still effectively frozen")
	}
}

func TestNestedFreezeSemantics(t *testing.T) {
	// Freezing a parent freezes descendants even if their self-state is
	// THAWED; thawing the child alone does not unfreeze it.
	f := NewFreezer()
	f.Create("/pod")
	f.Create("/pod/ctr")
	f.Freeze(context.Background(), "/pod")
	if frozen, _ := f.EffectivelyFrozen("/pod/ctr"); !frozen {
		t.Fatal("child of frozen parent not effectively frozen")
	}
	if s, _ := f.SelfState("/pod/ctr"); s != Thawed {
		t.Fatal("child self-state should remain THAWED")
	}
	f.Thaw(context.Background(), "/pod/ctr") // no-op for effective state
	if frozen, _ := f.EffectivelyFrozen("/pod/ctr"); !frozen {
		t.Fatal("child thaw escaped frozen ancestor")
	}
	f.Thaw(context.Background(), "/pod")
	if frozen, _ := f.EffectivelyFrozen("/pod/ctr"); frozen {
		t.Fatal("child still frozen after ancestor thaw")
	}
}

func TestFreezeUnknown(t *testing.T) {
	f := NewFreezer()
	if err := f.Freeze(context.Background(), "/nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Freeze unknown: %v", err)
	}
	if _, err := f.SelfState("/nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("SelfState unknown: %v", err)
	}
	if _, err := f.EffectivelyFrozen("/nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("EffectivelyFrozen unknown: %v", err)
	}
}

func TestRemove(t *testing.T) {
	f := NewFreezer()
	f.Create("/a")
	f.Create("/a/b")
	if err := f.Remove("/a"); !errors.Is(err, ErrHasChildren) {
		t.Fatalf("Remove with children: %v", err)
	}
	if err := f.Remove("/a/b"); err != nil {
		t.Fatal(err)
	}
	if err := f.Remove("/a"); err != nil {
		t.Fatal(err)
	}
	if err := f.Remove("/a"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double remove: %v", err)
	}
	if err := f.Remove("/"); err == nil {
		t.Fatal("root removal accepted")
	}
}

func TestStateString(t *testing.T) {
	if Thawed.String() != "THAWED" || Frozen.String() != "FROZEN" {
		t.Fatal("state strings wrong")
	}
}

// Property: a cgroup is effectively frozen iff at least one of its path
// prefixes (including itself) has been frozen more recently than thawed.
func TestEffectiveFreezeProperty(t *testing.T) {
	f := func(ops []struct {
		Level  uint8
		Freeze bool
	}) bool {
		fr := NewFreezer()
		const depth = 4
		paths := make([]string, depth)
		p := ""
		for i := 0; i < depth; i++ {
			p = fmt.Sprintf("%s/g%d", p, i)
			fr.Create(p)
			paths[i] = p
		}
		frozen := make([]bool, depth) // shadow model of self-states
		for _, op := range ops {
			lvl := int(op.Level) % depth
			if op.Freeze {
				fr.Freeze(context.Background(), paths[lvl])
				frozen[lvl] = true
			} else {
				fr.Thaw(context.Background(), paths[lvl])
				frozen[lvl] = false
			}
		}
		// Check the deepest cgroup's effective state against the model.
		wantFrozen := false
		for _, fz := range frozen {
			if fz {
				wantFrozen = true
				break
			}
		}
		got, err := fr.EffectivelyFrozen(paths[depth-1])
		return err == nil && got == wantFrozen
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
