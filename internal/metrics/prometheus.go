package metrics

import (
	"fmt"
	"io"
	"net/http"
)

// Prometheus text exposition (version 0.0.4) for the registry, so a
// standard Prometheus scraper can pull the same counters, gauges, and
// histogram summaries the CSV exporter records. Metric names are
// sanitized to the [a-zA-Z0-9_:] charset and emitted in sorted order so
// repeated scrapes of an unchanged registry are byte-identical.

// promName maps an arbitrary registry name onto a legal Prometheus
// metric name: every disallowed rune (including ':', reserved for
// recording rules) becomes '_', and a leading digit is prefixed with
// '_'.
func promName(name string) string {
	out := make([]byte, 0, len(name))
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
			out = append(out, c)
		case c >= '0' && c <= '9':
			if i == 0 {
				out = append(out, '_')
			}
			out = append(out, c)
		default:
			out = append(out, '_')
		}
	}
	return string(out)
}

// WritePrometheus exports the registry in the Prometheus text format:
// counters and gauges as single samples, histograms as a summary
// (quantile-labelled samples plus _sum and _count), and series as a
// gauge holding the most recent sample. Names are sorted before
// emission for deterministic output.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	defer r.mu.Unlock()

	for _, name := range sortedKeys(r.counters) {
		n := promName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %g\n", n, n, r.counters[name].Value()); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(r.gauges) {
		n := promName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %g\n", n, n, r.gauges[name].Value()); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(r.histograms) {
		h := r.histograms[name]
		n := promName(name) + "_seconds"
		if _, err := fmt.Fprintf(w, "# TYPE %s summary\n", n); err != nil {
			return err
		}
		for _, q := range []float64{0.5, 0.9, 0.99} {
			if _, err := fmt.Fprintf(w, "%s{quantile=%q} %.6f\n", n, fmt.Sprintf("%g", q), h.Quantile(q).Seconds()); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_sum %.6f\n%s_count %d\n", n, h.sumSeconds(), n, h.Count()); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(r.series) {
		s := r.series[name]
		pts := s.Points()
		if len(pts) == 0 {
			continue
		}
		last := pts[len(pts)-1]
		n := promName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %g\n", n, n, last.V); err != nil {
			return err
		}
	}
	return nil
}

// sumSeconds returns the histogram's total observed time in seconds.
func (h *Histogram) sumSeconds() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum.Seconds()
}

// Handler returns an http.Handler serving the registry in the
// Prometheus text exposition format (a drop-in /metrics endpoint).
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}
