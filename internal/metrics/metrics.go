// Package metrics provides the lightweight instrumentation SwapServeLLM
// uses to record experiment measurements: counters, gauges, duration
// histograms with summary statistics, and timestamped series, with CSV
// export for the paper's analysis scripts.
package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"time"
)

// Counter is a monotonically increasing count.
type Counter struct {
	mu sync.Mutex
	v  float64
}

// Add increases the counter by delta (negative deltas are ignored).
func (c *Counter) Add(delta float64) {
	if delta < 0 {
		return
	}
	c.mu.Lock()
	c.v += delta
	c.mu.Unlock()
}

// Inc increases the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.v
}

// Gauge is an instantaneous value.
type Gauge struct {
	mu sync.Mutex
	v  float64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	g.mu.Lock()
	g.v = v
	g.mu.Unlock()
}

// Value returns the stored value.
func (g *Gauge) Value() float64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.v
}

// Histogram accumulates duration observations and reports summary
// statistics. Observations are retained (the experiment scale is modest)
// so exact percentiles are available.
type Histogram struct {
	mu  sync.Mutex
	obs []time.Duration
	sum time.Duration
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	h.mu.Lock()
	h.obs = append(h.obs, d)
	h.sum += d
	h.mu.Unlock()
}

// Count returns the number of observations.
func (h *Histogram) Count() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.obs)
}

// Mean returns the average observation (zero when empty).
func (h *Histogram) Mean() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.obs) == 0 {
		return 0
	}
	return h.sum / time.Duration(len(h.obs))
}

// Stddev returns the sample standard deviation (zero for fewer than two
// observations).
func (h *Histogram) Stddev() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	n := len(h.obs)
	if n < 2 {
		return 0
	}
	mean := float64(h.sum) / float64(n)
	var ss float64
	for _, d := range h.obs {
		diff := float64(d) - mean
		ss += diff * diff
	}
	return time.Duration(math.Sqrt(ss / float64(n-1)))
}

// Quantile returns the q-th exact quantile (q in [0,1]) of the
// observations, or zero when empty.
func (h *Histogram) Quantile(q float64) time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.obs) == 0 {
		return 0
	}
	sorted := make([]time.Duration, len(h.obs))
	copy(sorted, h.obs)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	idx := int(math.Ceil(q*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	return sorted[idx]
}

// CountBelow returns how many observations are at or under d — the
// numerator of an SLO-attainment ratio.
func (h *Histogram) CountBelow(d time.Duration) int {
	h.mu.Lock()
	defer h.mu.Unlock()
	n := 0
	for _, o := range h.obs {
		if o <= d {
			n++
		}
	}
	return n
}

// Min returns the smallest observation (zero when empty).
func (h *Histogram) Min() time.Duration { return h.Quantile(0) }

// Max returns the largest observation (zero when empty).
func (h *Histogram) Max() time.Duration { return h.Quantile(1) }

// Point is one timestamped sample in a series.
type Point struct {
	T time.Time
	V float64
}

// Series is an append-only timestamped sequence (GPU utilization over a
// month, token volume per hour, ...).
type Series struct {
	mu  sync.Mutex
	pts []Point
}

// Append adds a sample.
func (s *Series) Append(t time.Time, v float64) {
	s.mu.Lock()
	s.pts = append(s.pts, Point{T: t, V: v})
	s.mu.Unlock()
}

// Points returns a copy of the samples in append order.
func (s *Series) Points() []Point {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Point, len(s.pts))
	copy(out, s.pts)
	return out
}

// Len returns the number of samples.
func (s *Series) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.pts)
}

// Registry is a named collection of metrics.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
	series     map[string]*Series
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
		series:     make(map[string]*Series),
	}
}

// Counter returns (creating if needed) the named counter.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns (creating if needed) the named gauge.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns (creating if needed) the named histogram.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = &Histogram{}
		r.histograms[name] = h
	}
	return h
}

// Series returns (creating if needed) the named series.
func (r *Registry) Series(name string) *Series {
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.series[name]
	if !ok {
		s = &Series{}
		r.series[name] = s
	}
	return s
}

// sortedKeys returns a map's keys in sorted order, so every exporter
// emits metrics deterministically regardless of registration order.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// WriteCSV exports all metrics: one "kind,name,field,value" row per scalar
// and one "series,name,timestamp,value" row per sample. Metric names are
// sorted before emission within each kind (counters, then gauges, then
// histograms, then series), so output is byte-identical across runs.
func (r *Registry) WriteCSV(w io.Writer) error {
	r.mu.Lock()
	defer r.mu.Unlock()

	var rows []string
	for _, name := range sortedKeys(r.counters) {
		rows = append(rows, fmt.Sprintf("counter,%s,value,%g", name, r.counters[name].Value()))
	}
	for _, name := range sortedKeys(r.gauges) {
		rows = append(rows, fmt.Sprintf("gauge,%s,value,%g", name, r.gauges[name].Value()))
	}
	for _, name := range sortedKeys(r.histograms) {
		h := r.histograms[name]
		rows = append(rows,
			fmt.Sprintf("histogram,%s,count,%d", name, h.Count()),
			fmt.Sprintf("histogram,%s,mean_s,%.6f", name, h.Mean().Seconds()),
			fmt.Sprintf("histogram,%s,p50_s,%.6f", name, h.Quantile(0.5).Seconds()),
			fmt.Sprintf("histogram,%s,p99_s,%.6f", name, h.Quantile(0.99).Seconds()),
		)
	}
	for _, name := range sortedKeys(r.series) {
		for _, p := range r.series[name].Points() {
			rows = append(rows, fmt.Sprintf("series,%s,%d,%.6f", name, p.T.Unix(), p.V))
		}
	}
	if _, err := fmt.Fprintln(w, "kind,name,field,value"); err != nil {
		return err
	}
	_, err := fmt.Fprint(w, strings.Join(rows, "\n"))
	if len(rows) > 0 && err == nil {
		_, err = fmt.Fprintln(w)
	}
	return err
}
