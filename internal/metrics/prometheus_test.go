package metrics

import (
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("requests_total").Add(7)
	r.Gauge("snapshot_bytes_llama3.2:1b-fp16").Set(2.5e9)
	r.Histogram("swap_in_latency").Observe(2 * time.Second)
	r.Histogram("swap_in_latency").Observe(4 * time.Second)
	r.Series("gpu0_util").Append(time.Unix(1000, 0), 0.25)
	r.Series("gpu0_util").Append(time.Unix(2000, 0), 0.75)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE requests_total counter",
		"requests_total 7",
		// Invalid runes (':', '.', '-') are sanitized to underscores.
		"# TYPE snapshot_bytes_llama3_2_1b_fp16 gauge",
		"snapshot_bytes_llama3_2_1b_fp16 2.5e+09",
		"# TYPE swap_in_latency_seconds summary",
		`swap_in_latency_seconds{quantile="0.5"} 2.000000`,
		`swap_in_latency_seconds{quantile="0.99"} 4.000000`,
		"swap_in_latency_seconds_sum 6.000000",
		"swap_in_latency_seconds_count 2",
		// Series expose their latest sample.
		"gpu0_util 0.75",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q:\n%s", want, out)
		}
	}
}

func TestPromNameLeadingDigit(t *testing.T) {
	if got := promName("0gpu util"); got != "_0gpu_util" {
		t.Fatalf("promName = %q", got)
	}
}

func TestPrometheusHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("hits").Inc()
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type = %q", ct)
	}
	buf := make([]byte, 4096)
	n, _ := resp.Body.Read(buf)
	if !strings.Contains(string(buf[:n]), "hits 1") {
		t.Errorf("handler output = %q", buf[:n])
	}
}

// TestExportDeterministic asserts both exporters emit byte-identical
// output for registries populated in different orders, and across
// repeated exports of the same registry.
func TestExportDeterministic(t *testing.T) {
	build := func(names []string) *Registry {
		r := NewRegistry()
		for _, n := range names {
			r.Counter("c_" + n).Add(3)
			r.Gauge("g_" + n).Set(1.25)
			r.Histogram("h_" + n).Observe(time.Second)
			r.Series("s_"+n).Append(time.Unix(500, 0), 0.5)
		}
		return r
	}
	a := build([]string{"alpha", "beta", "gamma", "delta"})
	b := build([]string{"delta", "gamma", "beta", "alpha"})

	var csvA, csvB, promA, promB strings.Builder
	if err := a.WriteCSV(&csvA); err != nil {
		t.Fatal(err)
	}
	if err := b.WriteCSV(&csvB); err != nil {
		t.Fatal(err)
	}
	if csvA.String() != csvB.String() {
		t.Errorf("WriteCSV depends on insertion order:\n%s\nvs\n%s", csvA.String(), csvB.String())
	}
	if err := a.WritePrometheus(&promA); err != nil {
		t.Fatal(err)
	}
	if err := b.WritePrometheus(&promB); err != nil {
		t.Fatal(err)
	}
	if promA.String() != promB.String() {
		t.Errorf("WritePrometheus depends on insertion order:\n%s\nvs\n%s", promA.String(), promB.String())
	}

	// Repeated exports of an unchanged registry are identical.
	var again strings.Builder
	if err := a.WriteCSV(&again); err != nil {
		t.Fatal(err)
	}
	if again.String() != csvA.String() {
		t.Error("WriteCSV not stable across repeated runs")
	}

	// Names must come out sorted within each kind.
	lines := strings.Split(strings.TrimSpace(csvA.String()), "\n")
	var counters []string
	for _, l := range lines {
		if strings.HasPrefix(l, "counter,") {
			counters = append(counters, l)
		}
	}
	for i := 1; i < len(counters); i++ {
		if counters[i] < counters[i-1] {
			t.Errorf("counter rows unsorted: %q after %q", counters[i], counters[i-1])
		}
	}
}
