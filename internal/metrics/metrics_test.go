package metrics

import (
	"strings"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(2.5)
	c.Add(-10) // ignored
	if got := c.Value(); got != 3.5 {
		t.Fatalf("Value = %v", got)
	}
}

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != 8000 {
		t.Fatalf("Value = %v, want 8000", got)
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	g.Set(42)
	g.Set(-1)
	if got := g.Value(); got != -1 {
		t.Fatalf("Value = %v", got)
	}
}

func TestHistogramStats(t *testing.T) {
	var h Histogram
	if h.Mean() != 0 || h.Count() != 0 || h.Quantile(0.5) != 0 || h.Stddev() != 0 {
		t.Fatal("empty histogram stats not zero")
	}
	for _, d := range []time.Duration{time.Second, 2 * time.Second, 3 * time.Second, 4 * time.Second} {
		h.Observe(d)
	}
	if h.Count() != 4 {
		t.Fatalf("Count = %d", h.Count())
	}
	if h.Mean() != 2500*time.Millisecond {
		t.Fatalf("Mean = %v", h.Mean())
	}
	if h.Min() != time.Second || h.Max() != 4*time.Second {
		t.Fatalf("Min/Max = %v/%v", h.Min(), h.Max())
	}
	if q := h.Quantile(0.5); q != 2*time.Second {
		t.Fatalf("p50 = %v", q)
	}
	if sd := h.Stddev(); sd < time.Second || sd > 2*time.Second {
		t.Fatalf("Stddev = %v (want ~1.29s)", sd)
	}
}

// Property: quantiles are monotone in q and bounded by min/max.
func TestHistogramQuantileMonotoneProperty(t *testing.T) {
	f := func(raw []uint16, qa, qb uint8) bool {
		if len(raw) == 0 {
			return true
		}
		var h Histogram
		for _, v := range raw {
			h.Observe(time.Duration(v) * time.Millisecond)
		}
		a := float64(qa%101) / 100
		b := float64(qb%101) / 100
		if a > b {
			a, b = b, a
		}
		va, vb := h.Quantile(a), h.Quantile(b)
		return va <= vb && va >= h.Min() && vb <= h.Max()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSeries(t *testing.T) {
	var s Series
	t0 := time.Unix(100, 0)
	s.Append(t0, 1)
	s.Append(t0.Add(time.Hour), 2)
	if s.Len() != 2 {
		t.Fatalf("Len = %d", s.Len())
	}
	pts := s.Points()
	if pts[0].V != 1 || pts[1].V != 2 || !pts[1].T.Equal(t0.Add(time.Hour)) {
		t.Fatalf("points = %+v", pts)
	}
	// Points returns a copy.
	pts[0].V = 99
	if s.Points()[0].V != 1 {
		t.Fatal("Points aliased internal storage")
	}
}

func TestRegistryIdentity(t *testing.T) {
	r := NewRegistry()
	if r.Counter("x") != r.Counter("x") {
		t.Fatal("Counter not stable")
	}
	if r.Gauge("y") != r.Gauge("y") {
		t.Fatal("Gauge not stable")
	}
	if r.Histogram("z") != r.Histogram("z") {
		t.Fatal("Histogram not stable")
	}
	if r.Series("s") != r.Series("s") {
		t.Fatal("Series not stable")
	}
}

func TestWriteCSV(t *testing.T) {
	r := NewRegistry()
	r.Counter("reqs").Add(5)
	r.Gauge("mem").Set(1.5)
	r.Histogram("lat").Observe(2 * time.Second)
	r.Series("util").Append(time.Unix(1000, 0), 0.5)

	var sb strings.Builder
	if err := r.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"kind,name,field,value",
		"counter,reqs,value,5",
		"gauge,mem,value,1.5",
		"histogram,lat,count,1",
		"histogram,lat,mean_s,2.000000",
		"series,util,1000,0.500000",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("CSV missing %q:\n%s", want, out)
		}
	}
}

func TestWriteCSVEmpty(t *testing.T) {
	var sb strings.Builder
	if err := NewRegistry().WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(sb.String(), "kind,name,field,value") {
		t.Fatalf("empty CSV = %q", sb.String())
	}
}
