// Benchmarks regenerating every table and figure from the paper's
// evaluation (§5), plus the ablation studies from DESIGN.md. Each
// benchmark runs the corresponding experiment end-to-end against the
// simulated substrates and reports its headline numbers as custom
// metrics; run with -v to print the full rows the paper reports.
//
//	go test -bench=. -benchmem
//	go test -v -bench=Figure6 -run=^$        # rows + metrics for Figure 6
package swapservellm

import (
	"os"
	"testing"
	"time"

	"swapservellm/internal/experiments"
	"swapservellm/internal/workload"
)

// printTables controls whether benchmarks print the full row output.
func printTables() bool { return testing.Verbose() }

// BenchmarkFigure1TokenVolume regenerates Figure 1: a synthetic week of
// Coding and Conversational token volume with the Azure traces' diurnal
// and weekend structure.
func BenchmarkFigure1TokenVolume(b *testing.B) {
	var series []experiments.Fig1Series
	for i := 0; i < b.N; i++ {
		series = experiments.Figure1(42)
	}
	if printTables() {
		experiments.PrintFigure1(os.Stdout, series)
	}
	coding := experiments.Summarize(series[0])
	b.ReportMetric(coding.PeakTroughRatio, "coding-peak:trough")
	b.ReportMetric(100*coding.WeekendReduction, "coding-weekend-drop-%")
}

// BenchmarkFigure2ColdStart regenerates Figure 2: cold-start latency
// (container startup + engine init) for vLLM, Ollama, SGLang, and
// TensorRT-LLM across the model sweep on the H100 testbed.
func BenchmarkFigure2ColdStart(b *testing.B) {
	var rows []experiments.Fig2Row
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = experiments.Figure2(2000)
		if err != nil {
			b.Fatal(err)
		}
	}
	if printTables() {
		experiments.PrintFigure2(os.Stdout, rows)
	}
	for _, r := range rows {
		if r.Model == "llama3.1:8b-fp16" {
			b.ReportMetric(r.ColdStartSec, string(r.Engine)+"-8B-cold-s")
		}
	}
}

// BenchmarkFigure3ClusterUtilization regenerates Figure 3: a month of
// GPU utilization and memory for six models on one H100 under dedicated
// provisioning.
func BenchmarkFigure3ClusterUtilization(b *testing.B) {
	var res experiments.Fig3Result
	for i := 0; i < b.N; i++ {
		res = experiments.Figure3(7)
	}
	if printTables() {
		experiments.PrintFigure3(os.Stdout, res)
	}
	b.ReportMetric(100*res.MeanUtil, "mean-util-%")
	b.ReportMetric(100*res.MemFrac, "resident-mem-%")
}

// BenchmarkTable1VLLMInitBreakdown regenerates Table 1: the vLLM
// initialization phase breakdown for the ten evaluated models.
func BenchmarkTable1VLLMInitBreakdown(b *testing.B) {
	var rows []experiments.Table1Row
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = experiments.Table1(2000)
		if err != nil {
			b.Fatal(err)
		}
	}
	if printTables() {
		experiments.PrintTable1(os.Stdout, rows)
	}
	for _, r := range rows {
		if r.DisplayName == "DS-14B" {
			b.ReportMetric(r.TotalSec, "DS-14B-total-s")
			b.ReportMetric(r.CompileSec, "DS-14B-compile-s")
		}
	}
}

// BenchmarkFigure5OllamaLoading regenerates Figure 5: Ollama cold loads
// from disk and memory-backed storage vs SwapServeLLM in-memory
// snapshots on the A100 testbed.
func BenchmarkFigure5OllamaLoading(b *testing.B) {
	var rows []experiments.Fig5Row
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = experiments.Figure5(2000)
		if err != nil {
			b.Fatal(err)
		}
	}
	if printTables() {
		experiments.PrintFigure5(os.Stdout, rows)
	}
	for _, r := range rows {
		if r.Model == "deepseek-r1:14b-fp16" {
			b.ReportMetric(r.DiskSec, "14B-disk-s")
			b.ReportMetric(r.MemorySec, "14B-mem-s")
			b.ReportMetric(r.SnapshotSec, "14B-snapshot-s")
		}
	}
}

// BenchmarkFigure6aSwapInVLLM regenerates Figure 6a: on-demand swap-in
// latency with vLLM backends through the full SwapServeLLM stack.
func BenchmarkFigure6aSwapInVLLM(b *testing.B) {
	var rows []experiments.Fig6aRow
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = experiments.Figure6a(1000)
		if err != nil {
			b.Fatal(err)
		}
	}
	if printTables() {
		experiments.PrintFigure6a(os.Stdout, rows)
	}
	b.ReportMetric(rows[0].SwapInSec, "1B-swapin-s")
	b.ReportMetric(rows[len(rows)-1].SwapInSec, "14B-swapin-s")
}

// BenchmarkFigure6bSwapInOllama regenerates Figure 6b: SwapServeLLM
// swap-in vs Ollama model loading through the full stack.
func BenchmarkFigure6bSwapInOllama(b *testing.B) {
	var rows []experiments.Fig6bRow
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = experiments.Figure6b(1000)
		if err != nil {
			b.Fatal(err)
		}
	}
	if printTables() {
		experiments.PrintFigure6b(os.Stdout, rows)
	}
	b.ReportMetric(rows[0].SwapInSec, "1B-swapin-s")
	b.ReportMetric(rows[len(rows)-1].SwapInSec, "14B-swapin-s")
}

// BenchmarkHeadlineClaims derives the paper's abstract-level claims
// (18-31x over vLLM, up to 29% over Ollama) from the Figure 6 runs.
func BenchmarkHeadlineClaims(b *testing.B) {
	var h experiments.HeadlineResult
	for i := 0; i < b.N; i++ {
		a6, err := experiments.Figure6a(1000)
		if err != nil {
			b.Fatal(err)
		}
		b6, err := experiments.Figure6b(1000)
		if err != nil {
			b.Fatal(err)
		}
		h = experiments.Headline(a6, b6)
	}
	if printTables() {
		experiments.PrintHeadline(os.Stdout, h)
	}
	b.ReportMetric(h.VLLMSpeedupMax, "vllm-speedup-max")
	b.ReportMetric(h.OllamaSmallSpeedup, "ollama-1B-speedup")
	b.ReportMetric(100*h.OllamaLargeImprovement, "ollama-14B-improve-%")
}

// BenchmarkAblationPreemptionPolicy compares the demand-aware policy
// against LRU, largest-first, and round-robin on a skewed bursty load.
func BenchmarkAblationPreemptionPolicy(b *testing.B) {
	var rows []experiments.PolicyAblationRow
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = experiments.AblationPreemptionPolicy(1500, 48, 3)
		if err != nil {
			b.Fatal(err)
		}
	}
	if printTables() {
		experiments.PrintPolicyAblation(os.Stdout, rows)
	}
	for _, r := range rows {
		if r.Policy == "demand-aware" {
			b.ReportMetric(r.P99Sec, "demand-aware-p99-s")
			b.ReportMetric(float64(r.HotSwapOuts), "demand-aware-hot-evicts")
		}
		if r.Policy == "round-robin" {
			b.ReportMetric(float64(r.HotSwapOuts), "round-robin-hot-evicts")
		}
	}
}

// BenchmarkAblationSleepMode measures the vLLM sleep-mode fast path's
// effect on snapshot size and swap latency.
func BenchmarkAblationSleepMode(b *testing.B) {
	var rows []experiments.SleepModeAblationRow
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = experiments.AblationSleepMode(2000)
		if err != nil {
			b.Fatal(err)
		}
	}
	if printTables() {
		experiments.PrintSleepModeAblation(os.Stdout, rows)
	}
	b.ReportMetric(rows[0].SwapInSec, "swapin-off-s")
	b.ReportMetric(rows[1].SwapInSec, "swapin-sleep-s")
}

// BenchmarkAblationPipelinedSwap measures the full-duplex pipelined
// swap exchange (victim checkpoint overlapped with target restore)
// against the sequential swap-out-then-swap-in baseline across the
// Figure 6 sweep.
func BenchmarkAblationPipelinedSwap(b *testing.B) {
	var rows []experiments.PipelineRow
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = experiments.AblationPipelinedSwap(2000)
		if err != nil {
			b.Fatal(err)
		}
	}
	if printTables() {
		experiments.PrintPipeline(os.Stdout, rows)
	}
	last := rows[len(rows)-1]
	b.ReportMetric(last.SequentialSec, "14B-sequential-s")
	b.ReportMetric(last.PipelinedSec, "14B-pipelined-s")
	var imp float64
	for _, r := range rows {
		imp += r.ImprovementPct
	}
	b.ReportMetric(imp/float64(len(rows)), "mean-improvement-%")
}

// BenchmarkAblationConsolidation quantifies §6's models-per-GPU
// consolidation argument.
func BenchmarkAblationConsolidation(b *testing.B) {
	var rows []experiments.ConsolidationRow
	for i := 0; i < b.N; i++ {
		rows = experiments.AblationConsolidation()
	}
	if printTables() {
		experiments.PrintConsolidation(os.Stdout, rows)
	}
	b.ReportMetric(float64(rows[0].GPUs), "dedicated-gpus")
	b.ReportMetric(rows[2].WorstLatency, "hotswap-worst-wait-s")
}

// BenchmarkWorkloadGeneration measures the arrival-trace generator
// itself (a day of bursty coding traffic).
func BenchmarkWorkloadGeneration(b *testing.B) {
	g := workload.NewGenerator(1)
	start := experimentsEpoch()
	for i := 0; i < b.N; i++ {
		reqs := g.Arrivals(workload.ClassCoding, "m", start, start.AddDate(0, 0, 1), 600, 2)
		if len(reqs) == 0 {
			b.Fatal("no arrivals")
		}
	}
}

// experimentsEpoch mirrors the experiments package's fixed origin.
func experimentsEpoch() time.Time {
	return time.Date(2025, 11, 16, 0, 0, 0, 0, time.UTC)
}

// BenchmarkAblationElasticity compares always-warm, reactive hot-swap,
// and predictive-prefetch strategies on identical bursty traffic,
// reporting the latency/GPU-cost trade-off.
func BenchmarkAblationElasticity(b *testing.B) {
	var rows []experiments.ElasticityRow
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = experiments.AblationElasticity(2000, 3)
		if err != nil {
			b.Fatal(err)
		}
	}
	if printTables() {
		experiments.PrintElasticity(os.Stdout, rows)
	}
	b.ReportMetric(rows[0].MemGiBSec, "warm-mem-GiBs")
	b.ReportMetric(rows[1].MemGiBSec, "hotswap-mem-GiBs")
	b.ReportMetric(rows[1].MeanSec, "hotswap-mean-s")
}

// BenchmarkAblationSnapshotTiering measures swap-ins from RAM-resident
// vs disk-spilled checkpoint images under a host-memory cap.
func BenchmarkAblationSnapshotTiering(b *testing.B) {
	var rows []experiments.TieringRow
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = experiments.AblationSnapshotTiering(2000)
		if err != nil {
			b.Fatal(err)
		}
	}
	if printTables() {
		experiments.PrintSnapshotTiering(os.Stdout, rows)
	}
	for _, r := range rows {
		b.ReportMetric(r.SwapInSec, r.Location+"-"+r.Scenario[len(r.Scenario)-4:]+"-s")
	}
}

// BenchmarkAblationClusterPlacement compares the cluster gateway's
// locality-first placement against least-loaded and random baselines on
// a three-node, twelve-model deployment serving a compressed diurnal
// day, reporting streaming TTFT and the placement hit rate.
func BenchmarkAblationClusterPlacement(b *testing.B) {
	var rows []experiments.ClusterPlacementRow
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = experiments.AblationClusterPlacement(1000, 11)
		if err != nil {
			b.Fatal(err)
		}
	}
	if printTables() {
		experiments.PrintClusterPlacement(os.Stdout, rows)
	}
	for _, r := range rows {
		b.ReportMetric(r.MeanTTFTSec, r.Policy+"-mean-ttft-s")
		if r.Policy == "locality" {
			b.ReportMetric(r.PlacementHitRate, "locality-hit-rate")
		}
	}
}

// BenchmarkAblationCompileCache compares plain cold starts, warm
// compile-cache cold starts, and hot-swapping for vLLM LLaMA 3.1-8B.
func BenchmarkAblationCompileCache(b *testing.B) {
	var rows []experiments.CompileCacheRow
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = experiments.AblationCompileCache(2000)
		if err != nil {
			b.Fatal(err)
		}
	}
	if printTables() {
		experiments.PrintCompileCache(os.Stdout, rows)
	}
	b.ReportMetric(rows[0].LatencySec, "cold-cold-s")
	b.ReportMetric(rows[1].LatencySec, "cold-warmcache-s")
	b.ReportMetric(rows[2].LatencySec, "swapin-s")
}
