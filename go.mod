module swapservellm

go 1.22
