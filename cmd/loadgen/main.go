// Command loadgen drives a running swapserved with synthetic bursty
// workloads (the diurnal arrival model behind Figure 1) and reports
// latency statistics per model. It can also emit traces to CSV and
// replay recorded traces with their original timing.
//
//	loadgen -addr 127.0.0.1:8080 -models llama3.2:1b-fp16,deepseek-r1:7b-q4 -requests 50
//	loadgen -emit day.csv -models llama3.2:1b-fp16 -class coding -hours 24 -peak 120
//	loadgen -trace day.csv -addr 127.0.0.1:8080 -timescale 2000
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"swapservellm/internal/openai"
	"swapservellm/internal/workload"
)

func main() {
	var (
		addr      = flag.String("addr", "127.0.0.1:8080", "swapserved router address")
		modelsF   = flag.String("models", "", "comma-separated model list")
		requests  = flag.Int("requests", 40, "total requests to send (closed-loop mode)")
		conc      = flag.Int("concurrency", 8, "maximum in-flight requests")
		seed      = flag.Int64("seed", 1, "workload seed")
		classF    = flag.String("class", "conversational", "workload class: coding|conversational")
		maxTok    = flag.Int("max", 32, "max completion tokens per request")
		emit      = flag.String("emit", "", "write a synthetic trace CSV to this path and exit")
		hours     = flag.Int("hours", 24, "trace length in hours (with -emit)")
		peak      = flag.Float64("peak", 120, "peak requests/hour (with -emit)")
		trace     = flag.String("trace", "", "replay a trace CSV against the server")
		timescale = flag.Float64("timescale", 2000, "trace replay compression: simulated seconds per wall second")
	)
	flag.Parse()
	class := workload.ClassConversational
	if *classF == "coding" {
		class = workload.ClassCoding
	}
	modelList := splitModels(*modelsF)

	switch {
	case *emit != "":
		if len(modelList) == 0 {
			fatal(fmt.Errorf("-emit requires -models"))
		}
		emitTrace(*emit, modelList, class, *hours, *peak, *seed)
	case *trace != "":
		replayTrace(*trace, *addr, *conc, *maxTok, *timescale)
	default:
		if len(modelList) == 0 {
			fatal(fmt.Errorf("-models is required"))
		}
		closedLoop(*addr, modelList, class, *requests, *conc, *maxTok, *seed)
	}
}

func splitModels(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	for _, m := range strings.Split(s, ",") {
		if m = strings.TrimSpace(m); m != "" {
			out = append(out, m)
		}
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "loadgen:", err)
	os.Exit(1)
}

// emitTrace synthesizes a diurnal trace and writes it as CSV.
func emitTrace(path string, models []string, class workload.Class, hours int, peak float64, seed int64) {
	g := workload.NewGenerator(seed)
	// A canonical Monday 8 AM start: replay only uses relative times, and
	// business-hours traffic makes short traces non-empty.
	start := time.Date(2025, 11, 17, 8, 0, 0, 0, time.UTC)
	var reqs []workload.Request
	for i, model := range models {
		sub := g.Arrivals(class, model, start, start.Add(time.Duration(hours)*time.Hour),
			peak/float64(len(models)), 2.0)
		reqs = append(reqs, sub...)
		_ = i
	}
	f, err := os.Create(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	if err := workload.WriteTrace(f, reqs); err != nil {
		fatal(err)
	}
	fmt.Printf("loadgen: wrote %d requests (%d hours, peak %.0f/h) to %s\n", len(reqs), hours, peak, path)
}

// replayTrace fires a recorded trace at the server, compressing simulated
// gaps by timescale.
func replayTrace(path, addr string, conc, maxTok int, timescale float64) {
	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	reqs, err := workload.ReadTrace(f)
	f.Close()
	if err != nil {
		fatal(err)
	}
	if len(reqs) == 0 {
		fatal(fmt.Errorf("trace %s is empty", path))
	}
	if timescale < 1 {
		timescale = 1
	}
	sched := workload.ReplaySchedule(reqs)
	cli := openai.NewClient("http://" + addr)
	fmt.Printf("loadgen: replaying %d requests spanning %v (compressed %gx)\n",
		len(reqs), sched[len(sched)-1].Round(time.Second), timescale)

	var wg sync.WaitGroup
	sem := make(chan struct{}, conc)
	var mu sync.Mutex
	perModel := make(map[string][]time.Duration)
	errs := 0
	start := time.Now()
	for i, r := range reqs {
		wall := time.Duration(float64(sched[i]) / timescale)
		if sleep := wall - time.Since(start); sleep > 0 {
			time.Sleep(sleep)
		}
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, r workload.Request) {
			defer wg.Done()
			defer func() { <-sem }()
			out := r.OutputTokens
			if out > maxTok {
				out = maxTok
			}
			if out < 1 {
				out = 1
			}
			seedv := int64(i)
			t0 := time.Now()
			_, err := cli.ChatCompletion(context.Background(), &openai.ChatCompletionRequest{
				Model:     r.Model,
				Messages:  []openai.Message{{Role: "user", Content: "trace replay"}},
				Seed:      &seedv,
				MaxTokens: out,
			})
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				errs++
				return
			}
			perModel[r.Model] = append(perModel[r.Model], time.Since(t0))
		}(i, r)
	}
	wg.Wait()
	report(perModel, errs, time.Since(start))
}

// closedLoop sends a fixed number of requests round-robin across models.
func closedLoop(addr string, models []string, class workload.Class, requests, conc, maxTok int, seed int64) {
	gen := workload.NewGenerator(seed)
	cli := openai.NewClient("http://" + addr)
	var wg sync.WaitGroup
	sem := make(chan struct{}, conc)
	var mu sync.Mutex
	perModel := make(map[string][]time.Duration)
	errs := 0
	start := time.Now()
	for i := 0; i < requests; i++ {
		model := models[i%len(models)]
		_, outTok := gen.Tokens(class)
		if outTok > maxTok {
			outTok = maxTok
		}
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, model string, outTok int) {
			defer wg.Done()
			defer func() { <-sem }()
			seedv := int64(i)
			t0 := time.Now()
			_, err := cli.ChatCompletion(context.Background(), &openai.ChatCompletionRequest{
				Model:     model,
				Messages:  []openai.Message{{Role: "user", Content: "load generator request"}},
				Seed:      &seedv,
				MaxTokens: outTok,
			})
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				errs++
				return
			}
			perModel[model] = append(perModel[model], time.Since(t0))
		}(i, model, outTok)
	}
	wg.Wait()
	report(perModel, errs, time.Since(start))
}

// report prints per-model latency statistics.
func report(perModel map[string][]time.Duration, errs int, wall time.Duration) {
	total := errs
	for _, lats := range perModel {
		total += len(lats)
	}
	fmt.Printf("loadgen: %d requests in %v wall (%d errors)\n", total, wall.Round(time.Millisecond), errs)
	names := make([]string, 0, len(perModel))
	for m := range perModel {
		names = append(names, m)
	}
	sort.Strings(names)
	for _, m := range names {
		lats := perModel[m]
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		var sum time.Duration
		for _, l := range lats {
			sum += l
		}
		fmt.Printf("  %-28s n=%-4d mean=%-10v p50=%-10v p99=%v\n",
			m, len(lats),
			(sum / time.Duration(len(lats))).Round(time.Millisecond),
			lats[len(lats)/2].Round(time.Millisecond),
			lats[(len(lats)*99)/100].Round(time.Millisecond))
	}
	if errs > 0 {
		os.Exit(1)
	}
}
