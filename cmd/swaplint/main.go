// Command swaplint runs the repository's custom static-analysis suite
// (internal/lint): clockcheck, ctxcheck, lockcheck, sitecheck,
// statecheck, errwrap, and the interprocedural trio gatecheck,
// blockcheck, and lockorder.
//
// Standalone:
//
//	go run ./cmd/swaplint ./...
//	go run ./cmd/swaplint -json ./...            # machine-readable findings
//	go run ./cmd/swaplint -only gatecheck ./...  # restrict the analyzer set
//
// exits 0 when clean, 1 when findings are reported, 2 on usage or load
// errors. The interprocedural analyzers see the whole module in
// standalone mode; under vet's one-unit-at-a-time protocol they only
// see one package's bodies and are correspondingly weaker. As a vet
// tool:
//
//	go vet -vettool=$(which swaplint) ./...
//
// it speaks the cmd/vet unit-checker protocol: -V=full for the build
// cache key, -flags for flag discovery, and a single *.cfg argument per
// package, analyzing just that compilation unit against the export data
// the go command already built.
package main

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"strings"

	"swapservellm/internal/lint"
	"swapservellm/internal/lint/blockcheck"
	"swapservellm/internal/lint/clockcheck"
	"swapservellm/internal/lint/ctxcheck"
	"swapservellm/internal/lint/errwrap"
	"swapservellm/internal/lint/gatecheck"
	"swapservellm/internal/lint/lockcheck"
	"swapservellm/internal/lint/lockorder"
	"swapservellm/internal/lint/sitecheck"
	"swapservellm/internal/lint/statecheck"
)

const version = "v3"

func analyzers() []*lint.Analyzer {
	return []*lint.Analyzer{
		clockcheck.New(),
		ctxcheck.New(),
		lockcheck.New(),
		sitecheck.New(),
		statecheck.New(),
		errwrap.New(),
		gatecheck.New(),
		blockcheck.New(),
		lockorder.New(),
	}
}

// selectAnalyzers filters the suite to the comma-separated names in
// only ("" keeps everything).
func selectAnalyzers(only string) ([]*lint.Analyzer, error) {
	all := analyzers()
	if only == "" {
		return all, nil
	}
	byName := make(map[string]*lint.Analyzer, len(all))
	for _, a := range all {
		byName[a.Name] = a
	}
	var out []*lint.Analyzer
	for _, name := range strings.Split(only, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		a, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q", name)
		}
		out = append(out, a)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-only selected no analyzers")
	}
	return out, nil
}

// jsonDiagnostic is the -json output record, one per finding.
type jsonDiagnostic struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func main() {
	args := os.Args[1:]

	// Vet-tool protocol entry points.
	if len(args) == 1 {
		switch {
		case args[0] == "-V=full" || args[0] == "--V=full":
			// The go command hashes this line into the build cache key.
			fmt.Printf("swaplint version %s\n", version)
			return
		case args[0] == "-flags" || args[0] == "--flags":
			// No tool-specific flags.
			fmt.Println("[]")
			return
		case strings.HasSuffix(args[0], ".cfg"):
			os.Exit(runVet(args[0]))
		}
	}

	jsonOut := false
	only := ""
	var patterns []string
	for i := 0; i < len(args); i++ {
		a := args[i]
		switch {
		case a == "-json" || a == "--json":
			jsonOut = true
		case a == "-only" || a == "--only":
			if i+1 >= len(args) {
				fmt.Fprintf(os.Stderr, "swaplint: -only requires a comma-separated analyzer list\n")
				os.Exit(2)
			}
			i++
			only = args[i]
		case strings.HasPrefix(a, "-only="):
			only = strings.TrimPrefix(a, "-only=")
		case strings.HasPrefix(a, "-"):
			fmt.Fprintf(os.Stderr, "usage: swaplint [-json] [-only analyzer,...] [packages]\n")
			os.Exit(2)
		default:
			patterns = append(patterns, a)
		}
	}
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	selected, err := selectAnalyzers(only)
	if err != nil {
		fmt.Fprintf(os.Stderr, "swaplint: %v\n", err)
		os.Exit(2)
	}

	fset, pkgs, err := lint.Load(".", patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "swaplint: %v\n", err)
		os.Exit(2)
	}
	diags := lint.NewRunner(selected...).Run(fset, pkgs)
	if jsonOut {
		records := make([]jsonDiagnostic, 0, len(diags))
		for _, d := range diags {
			d = rel(d)
			records = append(records, jsonDiagnostic{
				File:     d.Pos.Filename,
				Line:     d.Pos.Line,
				Column:   d.Pos.Column,
				Analyzer: d.Analyzer,
				Message:  d.Message,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(records); err != nil {
			fmt.Fprintf(os.Stderr, "swaplint: %v\n", err)
			os.Exit(2)
		}
	} else {
		for _, d := range diags {
			fmt.Println(relativize(d))
		}
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}

// rel is relativize without the rendering.
func rel(d lint.Diagnostic) lint.Diagnostic {
	if wd, err := os.Getwd(); err == nil && d.Pos.Filename != "" {
		if r, rerr := filepath.Rel(wd, d.Pos.Filename); rerr == nil && !strings.HasPrefix(r, "..") {
			d.Pos.Filename = r
		}
	}
	return d
}

// relativize shortens absolute filenames to the working directory for
// readable output.
func relativize(d lint.Diagnostic) string {
	return rel(d).String()
}

// vetConfig is the JSON the go command hands a vet tool for one
// compilation unit (see cmd/go/internal/work and
// x/tools/go/analysis/unitchecker for the de-facto schema).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// runVet analyzes the single package described by cfgPath and returns
// the process exit code.
func runVet(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "swaplint: %v\n", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "swaplint: parsing %s: %v\n", cfgPath, err)
		return 1
	}

	// swaplint keeps no cross-package facts; the vetx output only needs
	// to exist for the build cache.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			fmt.Fprintf(os.Stderr, "swaplint: %v\n", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		if !filepath.IsAbs(name) {
			name = filepath.Join(cfg.Dir, name)
		}
		af, perr := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if perr != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0
			}
			fmt.Fprintf(os.Stderr, "swaplint: %v\n", perr)
			return 1
		}
		files = append(files, af)
	}

	lookup := func(path string) (io.ReadCloser, error) {
		if canonical, ok := cfg.ImportMap[path]; ok {
			path = canonical
		}
		f, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	}
	pkg := &lint.Package{ImportPath: cfg.ImportPath, Dir: cfg.Dir, Files: files}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{
		Importer: importer.ForCompiler(fset, cfg.Compiler, lookup),
		Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	tpkg, cerr := conf.Check(cfg.ImportPath, fset, files, info)
	if cerr != nil && tpkg == nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "swaplint: typecheck %s: %v\n", cfg.ImportPath, cerr)
		return 1
	}
	pkg.Types = tpkg
	pkg.Info = info

	// Single-unit mode: whole-program Finish checks (dead fault sites)
	// run only in standalone mode, where every package is visible.
	diags := lint.NewRunner(analyzers()...).Run(fset, []*lint.Package{pkg})
	for _, d := range diags {
		fmt.Fprintln(os.Stderr, d.String())
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}
