// Command swaplint runs the repository's custom static-analysis suite
// (internal/lint): clockcheck, ctxcheck, lockcheck, sitecheck,
// statecheck, and errwrap.
//
// Standalone:
//
//	go run ./cmd/swaplint ./...
//
// exits 0 when clean, 1 when findings are reported, 2 on usage or load
// errors. As a vet tool:
//
//	go vet -vettool=$(which swaplint) ./...
//
// it speaks the cmd/vet unit-checker protocol: -V=full for the build
// cache key, -flags for flag discovery, and a single *.cfg argument per
// package, analyzing just that compilation unit against the export data
// the go command already built.
package main

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"strings"

	"swapservellm/internal/lint"
	"swapservellm/internal/lint/clockcheck"
	"swapservellm/internal/lint/ctxcheck"
	"swapservellm/internal/lint/errwrap"
	"swapservellm/internal/lint/lockcheck"
	"swapservellm/internal/lint/sitecheck"
	"swapservellm/internal/lint/statecheck"
)

const version = "v2"

func analyzers() []*lint.Analyzer {
	return []*lint.Analyzer{
		clockcheck.New(),
		ctxcheck.New(),
		lockcheck.New(),
		sitecheck.New(),
		statecheck.New(),
		errwrap.New(),
	}
}

func main() {
	args := os.Args[1:]

	// Vet-tool protocol entry points.
	if len(args) == 1 {
		switch {
		case args[0] == "-V=full" || args[0] == "--V=full":
			// The go command hashes this line into the build cache key.
			fmt.Printf("swaplint version %s\n", version)
			return
		case args[0] == "-flags" || args[0] == "--flags":
			// No tool-specific flags.
			fmt.Println("[]")
			return
		case strings.HasSuffix(args[0], ".cfg"):
			os.Exit(runVet(args[0]))
		}
	}

	if len(args) == 0 {
		args = []string{"./..."}
	}
	for _, a := range args {
		if strings.HasPrefix(a, "-") {
			fmt.Fprintf(os.Stderr, "usage: swaplint [packages]\n")
			os.Exit(2)
		}
	}

	fset, pkgs, err := lint.Load(".", args)
	if err != nil {
		fmt.Fprintf(os.Stderr, "swaplint: %v\n", err)
		os.Exit(2)
	}
	diags := lint.NewRunner(analyzers()...).Run(fset, pkgs)
	for _, d := range diags {
		fmt.Println(relativize(d))
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}

// relativize shortens absolute filenames to the working directory for
// readable output.
func relativize(d lint.Diagnostic) string {
	if wd, err := os.Getwd(); err == nil && d.Pos.Filename != "" {
		if rel, rerr := filepath.Rel(wd, d.Pos.Filename); rerr == nil && !strings.HasPrefix(rel, "..") {
			d.Pos.Filename = rel
		}
	}
	return d.String()
}

// vetConfig is the JSON the go command hands a vet tool for one
// compilation unit (see cmd/go/internal/work and
// x/tools/go/analysis/unitchecker for the de-facto schema).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// runVet analyzes the single package described by cfgPath and returns
// the process exit code.
func runVet(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "swaplint: %v\n", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "swaplint: parsing %s: %v\n", cfgPath, err)
		return 1
	}

	// swaplint keeps no cross-package facts; the vetx output only needs
	// to exist for the build cache.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			fmt.Fprintf(os.Stderr, "swaplint: %v\n", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		if !filepath.IsAbs(name) {
			name = filepath.Join(cfg.Dir, name)
		}
		af, perr := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if perr != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0
			}
			fmt.Fprintf(os.Stderr, "swaplint: %v\n", perr)
			return 1
		}
		files = append(files, af)
	}

	lookup := func(path string) (io.ReadCloser, error) {
		if canonical, ok := cfg.ImportMap[path]; ok {
			path = canonical
		}
		f, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	}
	pkg := &lint.Package{ImportPath: cfg.ImportPath, Dir: cfg.Dir, Files: files}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{
		Importer: importer.ForCompiler(fset, cfg.Compiler, lookup),
		Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	tpkg, cerr := conf.Check(cfg.ImportPath, fset, files, info)
	if cerr != nil && tpkg == nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "swaplint: typecheck %s: %v\n", cfg.ImportPath, cerr)
		return 1
	}
	pkg.Types = tpkg
	pkg.Info = info

	// Single-unit mode: whole-program Finish checks (dead fault sites)
	// run only in standalone mode, where every package is visible.
	diags := lint.NewRunner(analyzers()...).Run(fset, []*lint.Package{pkg})
	for _, d := range diags {
		fmt.Fprintln(os.Stderr, d.String())
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}
