package core

import (
	"sync"
	"time"

	"example.com/badmod/internal/simclock"
)

// waiter trips gatecheck: napMu is held across a simulated sleep but
// acquired with a plain Lock.
type waiter struct {
	napMu sync.Mutex
	clock simclock.Clock
}

func (w *waiter) Nap() {
	w.napMu.Lock()
	defer w.napMu.Unlock()
	w.clock.Sleep(time.Millisecond)
}

// pipe trips blockcheck: an ungated, unannotated channel receive
// inside the critical section.
type pipe struct {
	mu sync.Mutex
	ch chan int
}

func (p *pipe) Drain() {
	p.mu.Lock()
	defer p.mu.Unlock()
	<-p.ch
}

// ring trips lockorder: the two mutexes are acquired in both orders on
// different paths — a potential deadlock cycle.
type ring struct {
	a sync.Mutex
	b sync.Mutex
}

func (r *ring) AB() {
	r.a.Lock()
	defer r.a.Unlock()
	r.b.Lock()
	defer r.b.Unlock()
}

func (r *ring) BA() {
	r.b.Lock()
	defer r.b.Unlock()
	r.a.Lock()
	defer r.a.Unlock()
}
