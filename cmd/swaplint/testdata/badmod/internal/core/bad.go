// Package core is the swaplint smoke-test fixture: one seeded
// violation per analyzer, in a package path that matches the
// deterministic set.
package core

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"example.com/badmod/internal/chaos"
)

var errBoom = errors.New("boom")

type machine struct {
	mu    sync.Mutex
	state int //swaplint:state allow=transition
}

func (m *machine) transition(to int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.state = to
}

// Stamp trips clockcheck.
func Stamp() int64 { return time.Now().UnixNano() }

// Wrap trips errwrap.
func Wrap() error { return fmt.Errorf("core: %v", errBoom) }

// Leak trips lockcheck's pairing rule.
func (m *machine) Leak() {
	m.mu.Lock()
	m.state = 1
}

// Poke trips statecheck.
func (m *machine) Poke() { m.state = 2 }

// Fire trips sitecheck: a literal where a declared constant exists.
func Fire() chaos.Site {
	_ = chaos.SiteGood
	return chaos.Site("core.good")
}
