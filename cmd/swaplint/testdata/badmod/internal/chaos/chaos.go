// Package chaos is the smoke-test fixture's fault-site registry.
package chaos

// Site names one fault-injection point.
type Site string

// SiteGood is consulted by internal/core.
const SiteGood Site = "core.good"

// Sites lists every registered site.
func Sites() []Site { return []Site{SiteGood} }
