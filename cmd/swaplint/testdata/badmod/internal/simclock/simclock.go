// Package simclock is a stub of the repository's clock abstraction for
// the smoke fixture: swaplint matches it by import-path suffix.
package simclock

import "time"

type Clock interface {
	Now() time.Time
	Sleep(d time.Duration)
	After(d time.Duration) <-chan time.Time
	Since(t time.Time) time.Duration
}

type Gate struct{}

func GateFor(clock Clock) *Gate { return &Gate{} }

func (g *Gate) Enter()          {}
func (g *Gate) Exit()           {}
func (g *Gate) Run(fn func())   { fn() }
func (g *Gate) Go(fn func())    { go fn() }
func (g *Gate) Block(fn func()) { fn() }
func (g *Gate) BlockIO(fn func()) {
	fn()
}
func (g *Gate) Wait(d time.Duration, done ...<-chan struct{}) int { return -1 }
