package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestSmoke builds the swaplint binary and runs it against the seeded
// fixture module in testdata/badmod, which contains exactly one
// violation per analyzer. The binary must exit 1 and report all five.
func TestSmoke(t *testing.T) {
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go tool not on PATH")
	}
	bin := filepath.Join(t.TempDir(), "swaplint")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building swaplint: %v\n%s", err, out)
	}

	fixture, err := filepath.Abs(filepath.Join("testdata", "badmod"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(fixture, "go.mod")); err != nil {
		t.Fatalf("fixture module missing: %v", err)
	}

	cmd := exec.Command(bin, "./...")
	cmd.Dir = fixture
	out, err := cmd.CombinedOutput()
	exit, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("want exit error (findings), got err=%v\n%s", err, out)
	}
	if code := exit.ExitCode(); code != 1 {
		t.Fatalf("want exit code 1, got %d\n%s", code, out)
	}
	for _, analyzer := range []string{"clockcheck", "errwrap", "lockcheck", "statecheck", "sitecheck"} {
		if !strings.Contains(string(out), "["+analyzer+"]") {
			t.Errorf("output missing a %s finding:\n%s", analyzer, out)
		}
	}
}
