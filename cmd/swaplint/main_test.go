package main

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestSmoke builds the swaplint binary and runs it against the seeded
// fixture module in testdata/badmod, which contains exactly one
// violation per analyzer. The binary must exit 1 and report them all.
func TestSmoke(t *testing.T) {
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go tool not on PATH")
	}
	bin := filepath.Join(t.TempDir(), "swaplint")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building swaplint: %v\n%s", err, out)
	}

	fixture, err := filepath.Abs(filepath.Join("testdata", "badmod"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(fixture, "go.mod")); err != nil {
		t.Fatalf("fixture module missing: %v", err)
	}

	cmd := exec.Command(bin, "./...")
	cmd.Dir = fixture
	out, err := cmd.CombinedOutput()
	exit, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("want exit error (findings), got err=%v\n%s", err, out)
	}
	if code := exit.ExitCode(); code != 1 {
		t.Fatalf("want exit code 1, got %d\n%s", code, out)
	}
	for _, analyzer := range []string{"clockcheck", "errwrap", "lockcheck", "statecheck", "sitecheck", "gatecheck", "blockcheck", "lockorder"} {
		if !strings.Contains(string(out), "["+analyzer+"]") {
			t.Errorf("output missing a %s finding:\n%s", analyzer, out)
		}
	}

	// -json emits the same findings as a machine-readable array (the CI
	// problem matcher consumes this shape).
	jsonCmd := exec.Command(bin, "-json", "./...")
	jsonCmd.Dir = fixture
	jsonOut, err := jsonCmd.CombinedOutput()
	if exit, ok := err.(*exec.ExitError); !ok || exit.ExitCode() != 1 {
		t.Fatalf("want exit code 1 from -json run, got err=%v\n%s", err, jsonOut)
	}
	var diags []struct {
		File     string `json:"file"`
		Line     int    `json:"line"`
		Column   int    `json:"column"`
		Analyzer string `json:"analyzer"`
		Message  string `json:"message"`
	}
	if err := json.Unmarshal(jsonOut, &diags); err != nil {
		t.Fatalf("-json output is not a JSON array: %v\n%s", err, jsonOut)
	}
	if len(diags) == 0 {
		t.Fatal("-json output is empty despite findings")
	}
	for _, d := range diags {
		if d.File == "" || d.Line == 0 || d.Analyzer == "" || d.Message == "" {
			t.Errorf("incomplete diagnostic: %+v", d)
		}
	}
}
