// Command tracecheck schema-validates Chrome trace_event JSON files
// emitted by the swap-lifecycle tracer (swapbench -trace, or saved from
// the /debug/trace endpoints of swapserved and swapgateway): every
// event must carry a name and a known phase, complete ("X") events must
// have non-negative durations and unique span IDs, and every parent
// reference must resolve. CI runs it against the benchmark trace
// artifact so a broken exporter fails the build, not the first person
// who opens the trace in Perfetto.
//
//	swapbench -exp pipeline -trace /tmp/traces
//	tracecheck /tmp/traces/pipeline.trace.json
package main

import (
	"fmt"
	"os"

	"swapservellm/internal/obs"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: tracecheck <trace.json> [trace.json ...]")
		os.Exit(2)
	}
	code := 0
	for _, path := range os.Args[1:] {
		data, err := os.ReadFile(path)
		if err == nil {
			err = obs.ValidateTraceEvents(data)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "tracecheck: %s: %v\n", path, err)
			code = 1
			continue
		}
		fmt.Printf("tracecheck: %s: ok\n", path)
	}
	os.Exit(code)
}
