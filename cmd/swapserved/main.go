// Command swapserved runs the SwapServeLLM daemon: it loads a deployment
// configuration, initializes every backend (container + engine cold
// start + GPU snapshot), and serves the OpenAI-compatible router.
//
//	swapserved -config deploy.json
//	swapserved -config deploy.json -scale 200 -metrics metrics.csv
//
// Without -config, a two-model demo deployment is used.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"swapservellm/internal/config"
	"swapservellm/internal/core"
	"swapservellm/internal/obs"
	"swapservellm/internal/simclock"
)

func main() {
	var (
		cfgPath = flag.String("config", "", "deployment configuration (JSON); empty = demo config")
		listen  = flag.String("listen", "", "override the router listen address")
		scale   = flag.Float64("scale", simclock.DefaultScale, "simulation clock scale (1 = real time)")
		metrics = flag.String("metrics", "", "write metrics CSV to this path on shutdown")
	)
	flag.Parse()

	cfg := demoConfig()
	if *cfgPath != "" {
		var err error
		cfg, err = config.Load(*cfgPath)
		if err != nil {
			fatal(err)
		}
	}
	if *listen != "" {
		cfg.Listen = *listen
	}

	clock := simclock.NewScaled(time.Now(), *scale)
	s, err := core.New(cfg, core.Options{
		Clock: clock,
		// Swap-lifecycle spans, served at /debug/trace as Chrome
		// trace_event JSON (open in Perfetto / chrome://tracing).
		Tracer: obs.NewTracer(clock),
	})
	if err != nil {
		fatal(err)
	}

	fmt.Printf("swapserved: initializing %d backend(s) on testbed %s...\n", len(cfg.Models), cfg.Testbed)
	start := time.Now()
	if err := s.Start(context.Background()); err != nil {
		fatal(err)
	}
	fmt.Printf("swapserved: backends snapshotted and paused in %v wall time\n", time.Since(start).Round(time.Millisecond))
	fmt.Printf("swapserved: serving OpenAI-compatible API at http://%s\n", s.Addr())
	for _, b := range s.Backends() {
		st := b.Status()
		fmt.Printf("  model %-28s engine %-8s state %-12s required %.1f GiB\n",
			st.Name, st.Engine, st.State, st.RequiredGiB)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("\nswapserved: shutting down")
	if *metrics != "" {
		f, err := os.Create(*metrics)
		if err == nil {
			s.Registry().WriteCSV(f)
			f.Close()
			fmt.Println("swapserved: metrics written to", *metrics)
		}
	}
	s.Shutdown()
}

// demoConfig is a ready-to-run two-model deployment.
func demoConfig() config.Config {
	cfg := config.Default()
	cfg.Listen = "127.0.0.1:8080"
	cfg.Models = []config.Model{
		{Name: "llama3.2:1b-fp16", Engine: "ollama"},
		{Name: "deepseek-r1:7b-q4", Engine: "ollama"},
	}
	return cfg
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "swapserved:", err)
	os.Exit(1)
}
