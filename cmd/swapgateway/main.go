// Command swapgateway runs the SwapServeLLM cluster gateway: it starts
// every configured node (each a full single-node deployment with its own
// simulated GPUs and snapshot store), joins them to the node registry,
// and serves one OpenAI-compatible endpoint with locality-aware
// placement and failover in front of the fleet.
//
//	swapgateway -config cluster.json
//	swapgateway -config cluster.json -scale 200 -metrics metrics.csv
//
// Without -config, a two-node demo cluster is used.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"swapservellm/internal/cluster"
	"swapservellm/internal/config"
	"swapservellm/internal/obs"
	"swapservellm/internal/simclock"
)

func main() {
	var (
		cfgPath = flag.String("config", "", "cluster configuration (JSON); empty = demo cluster")
		listen  = flag.String("listen", "", "override the gateway listen address")
		scale   = flag.Float64("scale", simclock.DefaultScale, "simulation clock scale (1 = real time)")
		seed    = flag.Int64("seed", 1, "seed for the random placement policy")
		metrics = flag.String("metrics", "", "write cluster metrics CSV to this path on shutdown")
	)
	flag.Parse()

	cfg := demoCluster()
	if *cfgPath != "" {
		var err error
		cfg, err = config.LoadCluster(*cfgPath)
		if err != nil {
			fatal(err)
		}
	}
	if *listen != "" {
		cfg.Listen = *listen
	}

	clock := simclock.NewScaled(time.Now(), *scale)
	tracer := obs.NewTracer(clock)
	c, err := cluster.New(cfg,
		cluster.WithClock(clock),
		cluster.WithSeed(*seed),
		cluster.WithTracer(tracer),
	)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("swapgateway: initializing %d node(s) on testbed %s...\n", len(cfg.Nodes), cfg.Testbed)
	start := time.Now()
	if err := c.Start(context.Background()); err != nil {
		fatal(err)
	}
	fmt.Printf("swapgateway: cluster up in %v wall time, placement policy %s\n",
		time.Since(start).Round(time.Millisecond), c.Policy().Name())
	fmt.Printf("swapgateway: serving OpenAI-compatible API at http://%s\n", c.Addr())
	for _, n := range c.Nodes() {
		rep := n.Report()
		fmt.Printf("  node %-12s %-8s %2d model(s) at %s\n",
			rep.ID, rep.State, len(rep.Models), rep.URL)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("\nswapgateway: shutting down")
	if *metrics != "" {
		f, err := os.Create(*metrics)
		if err == nil {
			c.Registry().WriteCSV(f)
			f.Close()
			fmt.Println("swapgateway: metrics written to", *metrics)
		}
	}
	c.Shutdown()
}

// demoCluster is a ready-to-run two-node deployment with one replicated
// model.
func demoCluster() config.Cluster {
	cfg := config.DefaultCluster()
	cfg.Listen = "127.0.0.1:8080"
	cfg.Nodes = []config.Node{
		{Name: "node-a", Models: []config.Model{
			{Name: "llama3.2:1b-fp16", Engine: "ollama"},
			{Name: "deepseek-r1:7b-q4", Engine: "ollama"},
		}},
		{Name: "node-b", Models: []config.Model{
			{Name: "llama3.2:1b-fp16", Engine: "ollama"},
			{Name: "gemma3:4b-fp16", Engine: "ollama"},
		}},
	}
	return cfg
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "swapgateway:", err)
	os.Exit(1)
}
