// Command swapplot renders swapbench CSV exports as terminal charts —
// the repository's equivalent of the artifact's plotting scripts.
//
//	swapbench -exp all -csv out/
//	swapplot -label display -values disk_s,memory_s,snapshot_s -unit s out/fig5.csv
//	swapplot -series utilization out/fig3.csv
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"swapservellm/internal/plot"
)

func main() {
	var (
		labelCol  = flag.String("label", "", "column to use as bar labels (bar mode)")
		valueCols = flag.String("values", "", "comma-separated value columns (bar mode)")
		seriesCol = flag.String("series", "", "value column to render as a sparkline (series mode)")
		unit      = flag.String("unit", "", "unit suffix printed after values")
		width     = flag.Int("width", 50, "bar width / sparkline buckets")
		title     = flag.String("title", "", "chart title (default: file name)")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: swapplot [flags] <csv-file>")
		flag.PrintDefaults()
		os.Exit(2)
	}
	path := flag.Arg(0)
	header, rows, err := readCSV(path)
	if err != nil {
		fatal(err)
	}
	name := *title
	if name == "" {
		name = path
	}

	switch {
	case *seriesCol != "":
		idx, ok := header[*seriesCol]
		if !ok {
			fatal(fmt.Errorf("column %q not in %s", *seriesCol, path))
		}
		var values []float64
		for _, row := range rows {
			v, err := strconv.ParseFloat(row[idx], 64)
			if err != nil {
				fatal(fmt.Errorf("non-numeric value %q in column %s", row[idx], *seriesCol))
			}
			values = append(values, v)
		}
		plot.Sparkline(os.Stdout, name, plot.Downsample(values, *width))
	case *labelCol != "" && *valueCols != "":
		lidx, ok := header[*labelCol]
		if !ok {
			fatal(fmt.Errorf("column %q not in %s", *labelCol, path))
		}
		var labels []string
		for _, row := range rows {
			labels = append(labels, row[lidx])
		}
		var series []plot.NamedSeries
		for _, col := range strings.Split(*valueCols, ",") {
			col = strings.TrimSpace(col)
			cidx, ok := header[col]
			if !ok {
				fatal(fmt.Errorf("column %q not in %s", col, path))
			}
			s := plot.NamedSeries{Name: col}
			for _, row := range rows {
				v, err := strconv.ParseFloat(row[cidx], 64)
				if err != nil {
					fatal(fmt.Errorf("non-numeric value %q in column %s", row[cidx], col))
				}
				s.Values = append(s.Values, v)
			}
			series = append(series, s)
		}
		if len(series) == 1 {
			var bars []plot.BarRow
			for i, l := range labels {
				bars = append(bars, plot.BarRow{Label: l, Value: series[0].Values[i]})
			}
			plot.Bars(os.Stdout, name, *unit, bars, *width)
		} else {
			plot.GroupedBars(os.Stdout, name, *unit, labels, series, *width)
		}
	default:
		fatal(fmt.Errorf("specify either -label/-values (bars) or -series (sparkline)"))
	}
}

// readCSV parses a simple comma-separated file (no quoting — swapbench
// exports never contain commas in fields) into a header index and rows.
func readCSV(path string) (map[string]int, [][]string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 8*1024*1024)
	header := make(map[string]int)
	var rows [][]string
	first := true
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		fields := strings.Split(line, ",")
		if first {
			for i, h := range fields {
				header[h] = i
			}
			first = false
			continue
		}
		if len(fields) != len(header) {
			return nil, nil, fmt.Errorf("%s: row has %d fields, header has %d", path, len(fields), len(header))
		}
		rows = append(rows, fields)
	}
	return header, rows, sc.Err()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "swapplot:", err)
	os.Exit(1)
}
