// Command swapbench regenerates the paper's tables and figures against
// the simulated substrates and prints the same rows/series the paper
// reports. It is the artifact-evaluation entry point:
//
//	swapbench -exp all
//	swapbench -exp fig5 -scale 2000
//	swapbench -exp table1 -csv table1.csv
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"swapservellm/internal/experiments"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment: fig1|fig2|fig3|table1|fig5|fig6a|fig6b|headline|ablation-policy|ablation-sleep|ablation-consolidation|ablation-elasticity|ablation-tiering|ablation-compile-cache|pipeline|cluster|slo|ckptstore|protomix|chaos|all")
		scale    = flag.Float64("scale", 0, "simulation clock scale override (0 = per-experiment default)")
		seed     = flag.Int64("seed", 42, "workload seed for fig1/fig3/ablations; start seed for -exp chaos")
		seeds    = flag.Int("seeds", 10, "number of seeds the chaos soak sweeps")
		csvDir   = flag.String("csv", "", "also write each experiment's rows as CSV under this directory")
		traceDir = flag.String("trace", "", "write a Chrome trace_event JSON (<exp>.trace.json) of the swap lifecycle under this directory (supported: pipeline)")
	)
	flag.Parse()

	run := func(name string) bool {
		return *exp == "all" || *exp == name
	}
	pick := func(def float64) float64 {
		if *scale > 0 {
			return *scale
		}
		return def
	}
	out := os.Stdout
	any := false
	writeCSV := func(name, header string, rows []string) {
		if *csvDir == "" {
			return
		}
		path := *csvDir + "/" + name + ".csv"
		if err := experiments.WriteCSVFile(path, header, rows); err != nil {
			fail(err)
		}
		fmt.Fprintln(os.Stderr, "swapbench: wrote", path)
	}

	if run("fig1") {
		any = true
		series := experiments.Figure1(*seed)
		experiments.PrintFigure1(out, series)
		h, rows := experiments.Figure1CSV(series)
		writeCSV("fig1", h, rows)
		fmt.Fprintln(out)
	}
	if run("fig2") {
		any = true
		rows, err := experiments.Figure2(pick(2000))
		fail(err)
		experiments.PrintFigure2(out, rows)
		h, csv := experiments.Figure2CSV(rows)
		writeCSV("fig2", h, csv)
		fmt.Fprintln(out)
	}
	if run("fig3") {
		any = true
		res := experiments.Figure3(*seed)
		experiments.PrintFigure3(out, res)
		h, csv := experiments.Figure3CSV(res)
		writeCSV("fig3", h, csv)
		fmt.Fprintln(out)
	}
	if run("table1") {
		any = true
		rows, err := experiments.Table1(pick(2000))
		fail(err)
		experiments.PrintTable1(out, rows)
		h, csv := experiments.Table1CSV(rows)
		writeCSV("table1", h, csv)
		fmt.Fprintln(out)
	}
	if run("fig5") {
		any = true
		rows, err := experiments.Figure5(pick(2000))
		fail(err)
		experiments.PrintFigure5(out, rows)
		h, csv := experiments.Figure5CSV(rows)
		writeCSV("fig5", h, csv)
		fmt.Fprintln(out)
	}
	var fig6a []experiments.Fig6aRow
	var fig6b []experiments.Fig6bRow
	if run("fig6a") || run("headline") {
		var err error
		fig6a, err = experiments.Figure6a(pick(1000))
		fail(err)
	}
	if run("fig6b") || run("headline") {
		var err error
		fig6b, err = experiments.Figure6b(pick(1000))
		fail(err)
	}
	if run("fig6a") {
		any = true
		experiments.PrintFigure6a(out, fig6a)
		h, csv := experiments.Figure6aCSV(fig6a)
		writeCSV("fig6a", h, csv)
		fmt.Fprintln(out)
	}
	if run("fig6b") {
		any = true
		experiments.PrintFigure6b(out, fig6b)
		h, csv := experiments.Figure6bCSV(fig6b)
		writeCSV("fig6b", h, csv)
		fmt.Fprintln(out)
	}
	if run("headline") {
		any = true
		experiments.PrintHeadline(out, experiments.Headline(fig6a, fig6b))
		fmt.Fprintln(out)
	}
	if run("ablation-policy") {
		any = true
		rows, err := experiments.AblationPreemptionPolicy(pick(1500), 48, *seed)
		fail(err)
		experiments.PrintPolicyAblation(out, rows)
		fmt.Fprintln(out)
	}
	if run("ablation-sleep") {
		any = true
		rows, err := experiments.AblationSleepMode(pick(2000))
		fail(err)
		experiments.PrintSleepModeAblation(out, rows)
		fmt.Fprintln(out)
	}
	if run("ablation-consolidation") {
		any = true
		experiments.PrintConsolidation(out, experiments.AblationConsolidation())
		fmt.Fprintln(out)
	}
	if run("ablation-elasticity") {
		any = true
		rows, err := experiments.AblationElasticity(pick(2000), *seed)
		fail(err)
		experiments.PrintElasticity(out, rows)
		h, csv := experiments.ElasticityCSV(rows)
		writeCSV("ablation-elasticity", h, csv)
		fmt.Fprintln(out)
	}
	if run("ablation-compile-cache") {
		any = true
		rows, err := experiments.AblationCompileCache(pick(2000))
		fail(err)
		experiments.PrintCompileCache(out, rows)
		fmt.Fprintln(out)
	}
	if run("ablation-tiering") {
		any = true
		rows, err := experiments.AblationSnapshotTiering(pick(2000))
		fail(err)
		experiments.PrintSnapshotTiering(out, rows)
		fmt.Fprintln(out)
	}
	if run("pipeline") {
		any = true
		var rows []experiments.PipelineRow
		var err error
		if *traceDir != "" {
			path := *traceDir + "/pipeline.trace.json"
			f, ferr := os.Create(path)
			fail(ferr)
			rows, err = experiments.AblationPipelinedSwapTraced(pick(1000), f)
			f.Close()
			fail(err)
			fmt.Fprintln(os.Stderr, "swapbench: wrote", path)
		} else {
			rows, err = experiments.AblationPipelinedSwap(pick(1000))
			fail(err)
		}
		experiments.PrintPipeline(out, rows)
		h, csv := experiments.PipelineCSV(rows)
		writeCSV("pipeline", h, csv)
		fmt.Fprintln(out)
	}
	if run("cluster") {
		any = true
		rows, err := experiments.AblationClusterPlacement(pick(1000), *seed)
		fail(err)
		experiments.PrintClusterPlacement(out, rows)
		h, csv := experiments.ClusterPlacementCSV(rows)
		writeCSV("cluster", h, csv)
		fmt.Fprintln(out)
	}
	if run("slo") {
		any = true
		res := experiments.SLOAblation(*seed)
		experiments.PrintSLO(out, res)
		h, csv := experiments.SLOCSV(res)
		writeCSV("slo", h, csv)
		if err := os.WriteFile("BENCH_slo.json", []byte(experiments.SLOBenchJSON(res)), 0o644); err != nil {
			fail(err)
		}
		fmt.Fprintln(os.Stderr, "swapbench: wrote BENCH_slo.json")
		fmt.Fprintln(out)
	}
	if run("ckptstore") {
		any = true
		res, err := experiments.AblationCheckpointStore()
		fail(err)
		experiments.PrintCkptStore(out, res)
		h, csv := experiments.CkptStoreCSV(res)
		writeCSV("ckptstore", h, csv)
		if err := os.WriteFile("BENCH_ckptstore.json", []byte(experiments.CkptStoreBenchJSON(res)), 0o644); err != nil {
			fail(err)
		}
		fmt.Fprintln(os.Stderr, "swapbench: wrote BENCH_ckptstore.json")
		fmt.Fprintln(out)
	}
	if run("protomix") {
		any = true
		res, err := experiments.AblationProtocolMix(*seed)
		fail(err)
		experiments.PrintProtomix(out, res)
		h, csv := experiments.ProtomixCSV(res)
		writeCSV("protomix", h, csv)
		if err := os.WriteFile("BENCH_protomix.json", []byte(experiments.ProtomixBenchJSON(res)), 0o644); err != nil {
			fail(err)
		}
		fmt.Fprintln(os.Stderr, "swapbench: wrote BENCH_protomix.json")
		fmt.Fprintln(out)
	}
	if run("chaos") {
		any = true
		rows, err := experiments.ChaosSweep(*seed, *seeds, pick(4000))
		fail(err)
		clusterRows, err := experiments.ChaosClusterSweep(*seed, *seeds, pick(4000))
		fail(err)
		rows = append(rows, clusterRows...)
		schedRows, err := experiments.ChaosSchedSweep(*seed, *seeds, pick(4000))
		fail(err)
		rows = append(rows, schedRows...)
		ckptRows, err := experiments.ChaosCkptStoreSweep(*seed, *seeds, pick(4000))
		fail(err)
		rows = append(rows, ckptRows...)
		experiments.PrintChaos(out, rows)
		h, csv := experiments.ChaosCSV(rows)
		writeCSV("chaos", h, csv)
		fmt.Fprintln(out)
	}
	if !any {
		fmt.Fprintf(os.Stderr, "swapbench: unknown experiment %q\n", *exp)
		fmt.Fprintf(os.Stderr, "known: fig1 fig2 fig3 table1 fig5 fig6a fig6b headline %s all\n",
			strings.Join([]string{"ablation-policy", "ablation-sleep", "ablation-consolidation", "ablation-elasticity", "ablation-tiering", "ablation-compile-cache", "pipeline", "cluster", "slo", "ckptstore", "protomix", "chaos"}, " "))
		os.Exit(2)
	}
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "swapbench:", err)
		os.Exit(1)
	}
}
