// Command swapctl is the SwapServeLLM control client: it lists models,
// inspects backend/GPU state, triggers explicit swaps, and sends chat
// completions against a running swapserved.
//
//	swapctl -addr 127.0.0.1:8080 models
//	swapctl status
//	swapctl chat -model llama3.2:1b-fp16 -prompt "hello" -stream
//	swapctl swap-out -model llama3.2:1b-fp16
//	swapctl metrics
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"

	"swapservellm/internal/openai"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "swapserved router address")
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		usage()
	}
	base := "http://" + *addr
	cmd, rest := args[0], args[1:]
	switch cmd {
	case "models":
		cmdModels(base)
	case "status":
		cmdStatus(base)
	case "chat":
		cmdChat(base, rest)
	case "swap-in", "swap-out":
		cmdSwap(base, cmd, rest)
	case "metrics":
		cmdMetrics(base)
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: swapctl [-addr host:port] <command>

commands:
  models                      list served models
  status                      backend and GPU state
  chat -model M -prompt P     send a chat completion (-stream, -max N, -seed S)
  swap-in  -model M           explicitly swap a backend in
  swap-out -model M           explicitly swap a backend out
  metrics                     dump the server's metrics CSV`)
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "swapctl:", err)
	os.Exit(1)
}

func cmdModels(base string) {
	list, err := openai.NewClient(base).ListModels(context.Background())
	if err != nil {
		fatal(err)
	}
	for _, m := range list.Data {
		fmt.Printf("%-32s owned_by=%s\n", m.ID, m.OwnedBy)
	}
}

func cmdStatus(base string) {
	resp, err := http.Get(base + "/admin/status")
	if err != nil {
		fatal(err)
	}
	defer resp.Body.Close()
	var status struct {
		Backends []map[string]interface{} `json:"backends"`
		GPUs     []map[string]interface{} `json:"gpus"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&status); err != nil {
		fatal(err)
	}
	fmt.Println("backends:")
	for _, b := range status.Backends {
		fmt.Printf("  %-28s engine=%-8s state=%-12s queue=%v active=%v swaps=%v/%v\n",
			b["name"], b["engine"], b["state"], b["queue_len"], b["active"], b["swap_ins"], b["swap_outs"])
	}
	fmt.Println("gpus:")
	for _, g := range status.GPUs {
		fmt.Printf("  gpu %v: %.1f/%.1f GiB used, util %.0f%%\n",
			g["id"], g["used_gib"], g["total_gib"], 100*toF(g["utilization"]))
	}
}

func toF(v interface{}) float64 {
	f, _ := v.(float64)
	return f
}

func cmdChat(base string, args []string) {
	fs := flag.NewFlagSet("chat", flag.ExitOnError)
	model := fs.String("model", "", "model to query (required)")
	prompt := fs.String("prompt", "Hello!", "user prompt")
	stream := fs.Bool("stream", false, "stream tokens as they decode")
	maxTok := fs.Int("max", 64, "max completion tokens")
	seed := fs.Int64("seed", 0, "generation seed (deterministic at temperature 0)")
	fs.Parse(args)
	if *model == "" {
		fatal(fmt.Errorf("chat: -model is required"))
	}
	temp := 0.0
	req := &openai.ChatCompletionRequest{
		Model:       *model,
		Messages:    []openai.Message{{Role: "user", Content: *prompt}},
		MaxTokens:   *maxTok,
		Temperature: &temp,
		Seed:        seed,
	}
	cli := openai.NewClient(base)
	if *stream {
		err := cli.ChatCompletionStream(context.Background(), req, func(c *openai.ChatCompletionChunk) error {
			if len(c.Choices) > 0 {
				fmt.Print(c.Choices[0].Delta.Content)
			}
			return nil
		})
		fmt.Println()
		if err != nil {
			fatal(err)
		}
		return
	}
	resp, err := cli.ChatCompletion(context.Background(), req)
	if err != nil {
		fatal(err)
	}
	fmt.Println(resp.Choices[0].Message.Content)
	fmt.Printf("[%d prompt + %d completion tokens, finish=%s]\n",
		resp.Usage.PromptTokens, resp.Usage.CompletionTokens, resp.Choices[0].FinishReason)
}

func cmdSwap(base, dir string, args []string) {
	fs := flag.NewFlagSet(dir, flag.ExitOnError)
	model := fs.String("model", "", "model to swap (required)")
	fs.Parse(args)
	if *model == "" {
		fatal(fmt.Errorf("%s: -model is required", dir))
	}
	resp, err := http.Post(base+"/admin/"+dir+"?model="+*model, "", nil)
	if err != nil {
		fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		fatal(fmt.Errorf("%s: %s", resp.Status, body))
	}
	fmt.Printf("%s\n", body)
}

func cmdMetrics(base string) {
	resp, err := http.Get(base + "/metrics.csv")
	if err != nil {
		fatal(err)
	}
	defer resp.Body.Close()
	io.Copy(os.Stdout, resp.Body)
}
