// Quickstart: start an in-process SwapServeLLM deployment with one
// Ollama-backed model, watch the init sequence snapshot and pause it,
// then send a chat completion — the request transparently swaps the
// engine back into GPU memory before being served.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"swapservellm/internal/config"
	"swapservellm/internal/core"
	"swapservellm/internal/openai"
	"swapservellm/internal/simclock"
)

func main() {
	// One model served by the Ollama engine on the H100 testbed profile.
	cfg := config.Default()
	cfg.Models = []config.Model{
		{Name: "llama3.2:1b-fp16", Engine: "ollama"},
	}

	// The scaled clock compresses simulated hardware latencies: one
	// simulated second costs 1ms of wall time here.
	clock := simclock.NewScaled(time.Now(), 1000)
	srv, err := core.New(cfg, core.Options{Clock: clock})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("initializing backend (cold start + GPU snapshot)...")
	if err := srv.Start(context.Background()); err != nil {
		log.Fatal(err)
	}
	defer srv.Shutdown()

	b, _ := srv.Backend("llama3.2:1b-fp16")
	fmt.Printf("backend state after init: %v (snapshot %.1f GiB)\n",
		b.State(), float64(b.RequiredBytes())/(1<<30))

	// A request for the swapped-out model triggers the hot-swap path.
	cli := openai.NewClient(srv.URL())
	seed := int64(7)
	temp := 0.0
	t0 := clock.Now()
	resp, err := cli.ChatCompletion(context.Background(), &openai.ChatCompletionRequest{
		Model:       "llama3.2:1b-fp16",
		Messages:    []openai.Message{{Role: "user", Content: "Why hot-swap inference engines?"}},
		MaxTokens:   24,
		Seed:        &seed,
		Temperature: &temp,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("first request (incl. swap-in) took %.2fs simulated\n", clock.Since(t0).Seconds())
	fmt.Printf("completion: %s\n", resp.Choices[0].Message.Content)

	// The backend is now resident: the second request is served directly.
	t1 := clock.Now()
	if _, err := cli.ChatCompletion(context.Background(), &openai.ChatCompletionRequest{
		Model:     "llama3.2:1b-fp16",
		Messages:  []openai.Message{{Role: "user", Content: "And again?"}},
		MaxTokens: 8,
		Seed:      &seed,
	}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("warm request took %.2fs simulated\n", clock.Since(t1).Seconds())
	in, out := b.SwapCounts()
	fmt.Printf("swap-ins=%d swap-outs=%d state=%v\n", in, out, b.State())
}
