// Cluster: three SwapServeLLM nodes (80 GiB each) federated behind one
// gateway serving a twelve-model fleet — far more weight than the three
// GPUs can hold resident. The gateway's locality-first placement routes
// each request to the node whose backend is already warm (or whose RAM
// snapshot restores fastest), the heartbeat registry fences dead nodes,
// and in-flight requests fail over to a replica mid-stream.
//
//	go run ./examples/cluster
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"swapservellm/internal/cluster"
	"swapservellm/internal/config"
	"swapservellm/internal/openai"
	"swapservellm/internal/simclock"
)

// fleet is the twelve-model deployment; model i lands on nodes i%3 and
// (i+1)%3, so every model has a replica and every node hosts eight.
var fleet = []string{
	"llama3.2:1b-fp16",
	"llama3.2:3b-fp16",
	"llama3.1:8b-fp16",
	"deepseek-r1:1.5b-fp16",
	"deepseek-r1:7b-fp16",
	"deepseek-r1:8b-fp16",
	"deepseek-r1:14b-fp16",
	"deepseek-coder:6.7b-fp16",
	"gemma:7b-fp16",
	"gemma3:4b-fp16",
	"gemma3:12b-fp16",
	"gemma3:27b-fp16",
}

func main() {
	cfg := config.DefaultCluster()
	cfg.Nodes = []config.Node{{Name: "node-0"}, {Name: "node-1"}, {Name: "node-2"}}
	for i, name := range fleet {
		m := config.Model{Name: name, Engine: "ollama"}
		cfg.Nodes[i%3].Models = append(cfg.Nodes[i%3].Models, m)
		cfg.Nodes[(i+1)%3].Models = append(cfg.Nodes[(i+1)%3].Models, m)
	}

	clock := simclock.NewScaled(time.Now(), 2000)
	c, err := cluster.New(cfg, cluster.WithClock(clock), cluster.WithSeed(7))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("starting 3 nodes x 80 GiB serving 12 models (~2x replicated)...")
	if err := c.Start(context.Background()); err != nil {
		log.Fatal(err)
	}
	defer c.Shutdown()
	fmt.Printf("gateway up at http://%s, placement policy %s\n\n", c.Addr(), c.Policy().Name())

	cli := openai.NewClient(c.URL())
	seed := int64(3)

	// First touch is a placement miss: the chosen node restores the
	// model's GPU snapshot from host RAM. The second request to the same
	// model is a warm hit on the same node.
	for _, model := range []string{"llama3.1:8b-fp16", "llama3.1:8b-fp16", "gemma3:27b-fp16"} {
		start := clock.Now()
		resp, err := cli.ChatCompletion(context.Background(), &openai.ChatCompletionRequest{
			Model:     model,
			Messages:  []openai.Message{{Role: "user", Content: "identify yourself"}},
			Seed:      &seed,
			MaxTokens: 8,
		})
		if err != nil {
			log.Fatalf("%s: %v", model, err)
		}
		fmt.Printf("%-18s TTLT %6.2fs  (%s)\n", model, clock.Since(start).Seconds(),
			trim(resp.Choices[0].Message.Content))
	}

	hits := c.Registry().Counter("placement_hits").Value()
	total := c.Registry().Counter("placement_total").Value()
	fmt.Printf("\nplacement: %.0f/%.0f warm hits\n", hits, total)

	// Failover: kill the node currently serving llama3.1:8b mid-fleet and
	// watch the next request land on the replica.
	var warmNode string
	for _, cand := range c.NodeRegistry().Candidates("llama3.1:8b-fp16") {
		if cand.Presence == cluster.PresenceWarm {
			warmNode = cand.NodeID
		}
	}
	fmt.Printf("\nkilling %s (currently warm for llama3.1:8b-fp16)...\n", warmNode)
	if err := c.KillNode(warmNode); err != nil {
		log.Fatal(err)
	}
	start := clock.Now()
	_, err = cli.ChatCompletion(context.Background(), &openai.ChatCompletionRequest{
		Model:     "llama3.1:8b-fp16",
		Messages:  []openai.Message{{Role: "user", Content: "still there?"}},
		Seed:      &seed,
		MaxTokens: 8,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("request failed over to a replica in %.2fs simulated\n", clock.Since(start).Seconds())
	fmt.Printf("cross-node retries: %.0f, failover successes: %.0f\n",
		c.Registry().Counter("cross_node_retries").Value(),
		c.Registry().Counter("failover_successes").Value())

	for _, n := range c.NodeRegistry().Nodes() {
		rep := n.Report()
		fmt.Printf("  node %-8s %-8s load %d, %d swap-ins\n", rep.ID, rep.State, rep.Load, rep.SwapIns)
	}
}

func trim(s string) string {
	if len(s) > 40 {
		return s[:40] + "..."
	}
	return s
}
