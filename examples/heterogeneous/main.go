// Heterogeneous: engine-agnostic hot-swapping across all four inference
// engines (vLLM, Ollama, SGLang, TensorRT-LLM) on one GPU — the paper's
// core "engine-agnostic" claim. Each backend keeps its own runtime
// optimizations (vLLM's sleep mode shrinks its checkpoint), yet all are
// swapped by the same mechanism.
//
//	go run ./examples/heterogeneous
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"swapservellm/internal/config"
	"swapservellm/internal/core"
	"swapservellm/internal/openai"
	"swapservellm/internal/simclock"
)

func main() {
	cfg := config.Default()
	cfg.Global.UseSleepMode = true // vLLM sleep-mode fast path (§4.2)
	cfg.Models = []config.Model{
		{Name: "llama3.2:1b-fp16", Engine: "vllm"},
		{Name: "deepseek-r1:7b-q4", Engine: "ollama"},
		{Name: "llama3.2:3b-fp16", Engine: "sglang"},
		{Name: "deepseek-r1:1.5b-fp16", Engine: "trtllm"},
	}
	clock := simclock.NewScaled(time.Now(), 2000)
	srv, err := core.New(cfg, core.Options{Clock: clock})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("cold-starting four heterogeneous engines (this is the slow part the paper eliminates)...")
	t0 := clock.Now()
	if err := srv.Start(context.Background()); err != nil {
		log.Fatal(err)
	}
	defer srv.Shutdown()
	fmt.Printf("init sequence took %.0fs simulated; every backend is now a host-memory snapshot\n\n",
		clock.Since(t0).Seconds())

	cli := openai.NewClient(srv.URL())
	for _, b := range srv.Backends() {
		seed := int64(3)
		start := clock.Now()
		resp, err := cli.ChatCompletion(context.Background(), &openai.ChatCompletionRequest{
			Model:     b.Name(),
			Messages:  []openai.Message{{Role: "user", Content: "identify yourself"}},
			Seed:      &seed,
			MaxTokens: 8,
		})
		if err != nil {
			log.Fatalf("%s: %v", b.Name(), err)
		}
		swapIn := clock.Since(start)
		fmt.Printf("%-10s %-24s swap-in+decode %6.2fs (vs cold start: tens of seconds)\n",
			b.EngineKind(), b.Name(), swapIn.Seconds())
		_ = resp
	}

	fmt.Println("\nfinal backend states:")
	for _, b := range srv.Backends() {
		st := b.Status()
		fmt.Printf("  %-24s engine=%-8s state=%-12s swaps=%d/%d\n",
			st.Name, st.Engine, st.State, st.SwapIns, st.SwapOuts)
	}
}
