// Multimodel: the paper's §3.4 walkthrough. Six models share one 80 GiB
// GPU; bursty traffic makes SwapServeLLM hot-swap engines in and out
// under the demand-aware preemption policy, including the scenario where
// a LLaMA 3.3 70B FP8 request forces two resident models out.
//
//	go run ./examples/multimodel
package main

import (
	"context"
	"fmt"
	"log"
	"sync"
	"time"

	"swapservellm/internal/config"
	"swapservellm/internal/core"
	"swapservellm/internal/openai"
	"swapservellm/internal/simclock"
)

var models = []string{
	"gemma:7b-fp16",
	"deepseek-coder:6.7b-fp16",
	"llama3.2:1b-fp16",
	"llama3.2:3b-fp16",
	"deepseek-r1:7b-q8",
	"llama3.3:70b-fp8",
}

func main() {
	cfg := config.Default()
	for _, m := range models {
		cfg.Models = append(cfg.Models, config.Model{Name: m, Engine: "ollama"})
	}
	clock := simclock.NewScaled(time.Now(), 2000)
	srv, err := core.New(cfg, core.Options{Clock: clock})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("initializing %d backends sequentially...\n", len(models))
	if err := srv.Start(context.Background()); err != nil {
		log.Fatal(err)
	}
	defer srv.Shutdown()
	printStates(srv, "after init (all snapshotted)")

	cli := openai.NewClient(srv.URL())
	ask := func(model string, tokens int) {
		seed := int64(1)
		if _, err := cli.ChatCompletion(context.Background(), &openai.ChatCompletionRequest{
			Model:     model,
			Messages:  []openai.Message{{Role: "user", Content: "burst"}},
			Seed:      &seed,
			MaxTokens: tokens,
		}); err != nil {
			log.Printf("%s: %v", model, err)
		}
	}

	// §3.4: Gemma 7B and DeepSeek Coder 6.7B arrive together — both fit.
	var wg sync.WaitGroup
	for _, m := range []string{"gemma:7b-fp16", "deepseek-coder:6.7b-fp16"} {
		wg.Add(1)
		go func(m string) { defer wg.Done(); ask(m, 16) }(m)
	}
	wg.Wait()
	printStates(srv, "after concurrent Gemma + DeepSeek-Coder requests")

	// A LLaMA 3.3 70B FP8 request (≈77 GiB) must swap both out.
	ask("llama3.3:70b-fp8", 8)
	printStates(srv, "after the 70B request (both preempted)")

	// A bursty tail across the small models churns the GPU.
	for i := 0; i < 6; i++ {
		ask(models[i%4], 8)
	}
	printStates(srv, "after the bursty tail")

	var swapIns int64
	for _, b := range srv.Backends() {
		in, _ := b.SwapCounts()
		swapIns += in
	}
	fmt.Printf("\ntotal hot swap-ins across the run: %d (zero cold starts after init)\n", swapIns)
}

func printStates(srv *core.Server, label string) {
	fmt.Printf("\n%s:\n", label)
	for _, b := range srv.Backends() {
		st := b.Status()
		fmt.Printf("  %-26s %-12s gpu=%5.1fGiB swaps=%d/%d\n",
			st.Name, st.State, float64(st.GPUBytes)/(1<<30), st.SwapIns, st.SwapOuts)
	}
}
