// Serverless: the full elasticity feature set on one deployment — the
// idle reaper (generalized keep-alive) frees GPU memory behind idle
// backends, the predictive prefetcher swaps backends in ahead of
// periodic traffic, and snapshot tiering spills cold checkpoint images
// to disk under a host-memory cap.
//
//	go run ./examples/serverless
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"swapservellm/internal/config"
	"swapservellm/internal/core"
	"swapservellm/internal/openai"
	"swapservellm/internal/simclock"
)

func main() {
	cfg := config.Default()
	cfg.Global.KeepAliveSec = 12       // reap backends idle for 12 simulated seconds
	cfg.Global.Prefetch = true         // predictive swap-ins
	cfg.Global.SnapshotHostCapGiB = 40 // host RAM budget for snapshots
	cfg.Global.SnapshotSpill = true    // spill LRU images to disk
	cfg.Models = []config.Model{
		{Name: "deepseek-r1:14b-fp16", Engine: "ollama"}, // ~31 GiB snapshot
		{Name: "llama3.1:8b-fp16", Engine: "ollama"},     // ~17 GiB snapshot
		{Name: "llama3.2:1b-fp16", Engine: "ollama"},     // ~3.6 GiB snapshot
	}
	clock := simclock.NewScaled(time.Now(), 1000)
	srv, err := core.New(cfg, core.Options{Clock: clock})
	if err != nil {
		log.Fatal(err)
	}
	if err := srv.Start(context.Background()); err != nil {
		log.Fatal(err)
	}
	defer srv.Shutdown()

	// The 40 GiB host cap cannot hold all three snapshots: the first
	// (LRU) image spilled to disk during the init sequence.
	fmt.Println("snapshot tiers after init (40 GiB host cap):")
	for _, b := range srv.Backends() {
		loc, _ := srv.Driver().ImageLocation(b.Container().ID())
		img, _ := srv.Driver().ImageBytes(b.Container().ID())
		fmt.Printf("  %-24s %5.1f GiB on %s\n", b.Name(), float64(img)/(1<<30), loc)
	}

	cli := openai.NewClient(srv.URL())
	ask := func(model string) time.Duration {
		seed := int64(9)
		t0 := clock.Now()
		if _, err := cli.ChatCompletion(context.Background(), &openai.ChatCompletionRequest{
			Model:     model,
			Messages:  []openai.Message{{Role: "user", Content: "serverless"}},
			Seed:      &seed,
			MaxTokens: 4,
		}); err != nil {
			log.Fatalf("%s: %v", model, err)
		}
		return clock.Since(t0)
	}

	// Restoring the disk-spilled 14B pays the disk read; the RAM-resident
	// 8B restores fast.
	fmt.Printf("\nfirst request, 14B (disk tier):  %.2fs simulated\n", ask("deepseek-r1:14b-fp16").Seconds())
	fmt.Printf("first request, 8B (RAM tier):    %.2fs simulated\n", ask("llama3.1:8b-fp16").Seconds())

	// Periodic traffic to the 1B model teaches the prefetcher its rhythm:
	// after a few periods the swap-in happens before the request arrives.
	fmt.Println("\nperiodic 1B traffic (every ~20 simulated seconds):")
	for i := 0; i < 6; i++ {
		lat := ask("llama3.2:1b-fp16")
		fmt.Printf("  request %d: %.2fs simulated\n", i+1, lat.Seconds())
		time.Sleep(20 * time.Millisecond) // 20 simulated seconds at scale 1000
	}
	fmt.Printf("\nidle reaps: %.0f, prefetch swap-ins: %.0f\n",
		srv.Registry().Counter("idle_reaps").Value(),
		srv.Registry().Counter("prefetch_swap_ins").Value())
	fmt.Println("(the reaper frees idle backends; the prefetcher hides their swap-in latency)")
}
