// Multigpu: the §6 multi-GPU orchestration discussion. A tensor-parallel
// backend spans two GPUs; SwapServeLLM reserves memory on every device
// of the backend's topology with scoped acquire-release semantics, so
// swap-ins never overcommit either device.
//
//	go run ./examples/multigpu
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"swapservellm/internal/config"
	"swapservellm/internal/core"
	"swapservellm/internal/openai"
	"swapservellm/internal/simclock"
)

func main() {
	cfg := config.Default()
	cfg.Models = []config.Model{
		// A tensor-parallel 70B backend spanning GPUs 0 and 1.
		{Name: "llama3.3:70b-fp8", Engine: "ollama", GPUs: []int{0, 1}},
		// Two single-GPU backends pinned to each device.
		{Name: "llama3.1:8b-fp16", Engine: "ollama", GPUs: []int{0}},
		{Name: "deepseek-r1:7b-fp16", Engine: "ollama", GPUs: []int{1}},
	}
	clock := simclock.NewScaled(time.Now(), 2000)
	srv, err := core.New(cfg, core.Options{Clock: clock, GPUCount: 2})
	if err != nil {
		log.Fatal(err)
	}
	if err := srv.Start(context.Background()); err != nil {
		log.Fatal(err)
	}
	defer srv.Shutdown()

	printGPUs := func(label string) {
		fmt.Printf("%s:\n", label)
		for _, st := range srv.TaskManager().Monitor().Sample() {
			fmt.Printf("  gpu %d: %5.1f/%5.1f GiB used\n",
				st.ID, float64(st.UsedBytes)/(1<<30), float64(st.TotalBytes)/(1<<30))
		}
	}
	printGPUs("after init (all snapshotted)")

	cli := openai.NewClient(srv.URL())
	ask := func(model string) {
		seed := int64(5)
		if _, err := cli.ChatCompletion(context.Background(), &openai.ChatCompletionRequest{
			Model:     model,
			Messages:  []openai.Message{{Role: "user", Content: "tp"}},
			Seed:      &seed,
			MaxTokens: 6,
		}); err != nil {
			log.Fatalf("%s: %v", model, err)
		}
	}

	// Both single-GPU backends come in, one per device.
	ask("llama3.1:8b-fp16")
	ask("deepseek-r1:7b-fp16")
	printGPUs("\nafter per-device backends swapped in")

	// The tensor-parallel 70B needs room on BOTH devices: the scheduler
	// reserves on each and the preemption policy clears what it must.
	t0 := clock.Now()
	ask("llama3.3:70b-fp8")
	fmt.Printf("\n70B tensor-parallel swap-in (incl. preemptions) took %.2fs simulated\n",
		clock.Since(t0).Seconds())
	printGPUs("after the tensor-parallel swap-in")

	for _, b := range srv.Backends() {
		st := b.Status()
		fmt.Printf("  %-22s state=%-12s gpus=%v\n", st.Name, st.State, b.GPUs())
	}
}
